#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "core/session.h"
#include "exec/plan_cache.h"
#include "mv/matview.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Deterministic PRNG for the randomized differential (no global rand state).
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

double CounterOf(Database* db, const std::string& name) {
  return db->metrics()->Snapshot().ValueOf(name, -1);
}

/// The uncached oracle: same statement, use_cache=false, so the MV rewrite,
/// the plan cache and the result cache are all bypassed.
Result<QueryResult> Oracle(Database* db, const std::string& sql) {
  QueryOptions o;
  o.use_cache = false;
  return db->Query(sql, o);
}

class MatViewFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions opts;
    opts.exec_threads = 1;
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood" + std::to_string(opens_++)), opts));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 48));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
    CollectOids();
  }

  void CollectOids() {
    drivetrains_.clear();
    companies_.clear();
    MOOD_ASSERT_OK(db_.objects()->ScanExtent(
        "VehicleDriveTrain", false, {}, [&](Oid oid, const MoodValue&) {
          drivetrains_.push_back(oid);
          return Status::OK();
        }));
    MOOD_ASSERT_OK(db_.objects()->ScanExtent(
        "Company", false, {}, [&](Oid oid, const MoodValue&) {
          companies_.push_back(oid);
          return Status::OK();
        }));
  }

  /// Inserts one vehicle-family object with valid references.
  void InsertVehicle(Lcg* rng, int32_t id) {
    static const char* kClasses[] = {"Vehicle", "Automobile", "JapaneseAuto"};
    MoodValue tuple = MoodValue::Tuple(
        {MoodValue::Integer(id),
         MoodValue::Integer(static_cast<int32_t>(800 + rng->Uniform(2000))),
         MoodValue::Reference(drivetrains_[rng->Uniform(drivetrains_.size())]),
         MoodValue::Reference(companies_[rng->Uniform(companies_.size())])});
    MOOD_ASSERT_OK(
        db_.objects()->CreateObject(kClasses[rng->Uniform(3)], std::move(tuple))
            .status());
  }

  /// Asserts every registered view's query answers byte-identically to the
  /// uncached oracle.
  void ExpectParity(const std::vector<std::string>& queries) {
    for (const std::string& sql : queries) {
      MOOD_ASSERT_OK_AND_ASSIGN(QueryResult served, db_.Query(sql));
      MOOD_ASSERT_OK_AND_ASSIGN(QueryResult oracle, Oracle(&db_, sql));
      ASSERT_EQ(served.ToString(), oracle.ToString()) << "divergence on: " << sql;
    }
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
  std::vector<Oid> drivetrains_;
  std::vector<Oid> companies_;
  int opens_ = 0;
};

// ---------------------------------------------------------------------------
// Basics: create, serve, explain, drop
// ---------------------------------------------------------------------------

TEST_F(MatViewFixture, CreateServesNormalizedMatches) {
  const std::string sql =
      "SELECT v, v.weight FROM Vehicle v WHERE v.drivetrain.engine.cylinders > 4";
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult before, Oracle(&db_, sql));
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW heavy AS " + sql).status());
  EXPECT_EQ(db_.matviews()->view_count(), 1u);

  const double hits0 = CounterOf(&db_, "mv.hits");
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult served, db_.Query(sql));
  EXPECT_EQ(CounterOf(&db_, "mv.hits"), hits0 + 1);
  EXPECT_EQ(served.ToString(), before.ToString());

  // Normalization-equivalent spellings hit the same view.
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult respelled,
      db_.Query("select   v, v.weight from Vehicle v "
                "where v.drivetrain.engine.cylinders > 4 ;"));
  EXPECT_EQ(CounterOf(&db_, "mv.hits"), hits0 + 2);
  EXPECT_EQ(respelled.ToString(), before.ToString());

  // The rewrite is visible in EXPLAIN VERBOSE.
  ExplainOptions eo;
  eo.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult ex, db_.Explain(sql, eo));
  EXPECT_NE(ex.Render().find("mv: rewritten"), std::string::npos);

  // A different query is untouched.
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult other,
                            db_.Explain("SELECT v FROM Vehicle v", eo));
  EXPECT_EQ(other.Render().find("mv: rewritten"), std::string::npos);

  // DROP stops the rewrite; the query still answers (normal execution).
  MOOD_ASSERT_OK(db_.Execute("DROP MATERIALIZED VIEW heavy").status());
  EXPECT_EQ(db_.matviews()->view_count(), 0u);
  const double hits1 = CounterOf(&db_, "mv.hits");
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult after, db_.Query(sql));
  EXPECT_EQ(CounterOf(&db_, "mv.hits"), hits1);
  EXPECT_EQ(after.ToString(), before.ToString());
}

TEST_F(MatViewFixture, CreateValidation) {
  // Duplicate names: against other views and against classes.
  MOOD_ASSERT_OK(
      db_.Execute("CREATE MATERIALIZED VIEW mv1 AS SELECT v FROM Vehicle v")
          .status());
  EXPECT_EQ(db_.Execute("CREATE MATERIALIZED VIEW mv1 AS SELECT c FROM Company c")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.Execute(
                   "CREATE MATERIALIZED VIEW Vehicle AS SELECT c FROM Company c")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // A second view over the same normalized statement would make the rewrite
  // ambiguous.
  EXPECT_EQ(db_.Execute("CREATE MATERIALIZED VIEW mv2 AS SELECT v FROM Vehicle v")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // Methods in the definition are rejected outright (dependency tracking
  // cannot see what a method body reads).
  EXPECT_EQ(db_.Execute("CREATE MATERIALIZED VIEW mvm AS "
                        "SELECT v.lbweight() FROM Vehicle v")
                .status()
                .code(),
            StatusCode::kNotSupported);
  // The failed creates must not leave catalog residue.
  EXPECT_EQ(db_.catalog()->AllViews().size(), 1u);
  EXPECT_EQ(db_.Execute("DROP MATERIALIZED VIEW nosuch").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Delta maintenance
// ---------------------------------------------------------------------------

TEST_F(MatViewFixture, RootWritesMaintainWithoutFullRefresh) {
  const std::string sql =
      "SELECT v, v.weight, v.company.name FROM Vehicle v WHERE v.weight > 1000";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW hv AS " + sql).status());
  ASSERT_TRUE(db_.matviews()->Views()[0].delta_maintainable)
      << db_.matviews()->Views()[0].refusal;
  MOOD_ASSERT_OK(db_.Query(sql).status());  // initial serve

  const double full0 = CounterOf(&db_, "mv.full_refreshes");
  const double maint0 = CounterOf(&db_, "mv.maintenance_rows");
  Lcg rng(7);

  // INSERT: new roots appear in the view.
  InsertVehicle(&rng, 9001);
  ExpectParity({sql});
  // UPDATE: rows move in and out of the predicate.
  MOOD_ASSERT_OK(
      db_.Execute("UPDATE Vehicle v SET weight = 100 WHERE v.weight > 2400")
          .status());
  MOOD_ASSERT_OK(
      db_.Execute("UPDATE Vehicle v SET weight = 2000 WHERE v.weight < 900")
          .status());
  ExpectParity({sql});
  // DELETE: rows disappear.
  MOOD_ASSERT_OK(db_.Execute("DELETE FROM Vehicle v WHERE v.id = 9001").status());
  ExpectParity({sql});

  // All of the above was per-object delta maintenance on root writes.
  EXPECT_EQ(CounterOf(&db_, "mv.full_refreshes"), full0);
  EXPECT_GT(CounterOf(&db_, "mv.maintenance_rows"), maint0);
}

TEST_F(MatViewFixture, HopWritesForceFullRefresh) {
  // The view's path hops through VehicleDriveTrain and VehicleEngine; a write
  // there cannot be localized to specific roots.
  const std::string sql =
      "SELECT v, v.drivetrain.engine.cylinders FROM Vehicle v "
      "WHERE v.drivetrain.engine.cylinders > 4";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW pj AS " + sql).status());
  MOOD_ASSERT_OK(db_.Query(sql).status());

  const double full0 = CounterOf(&db_, "mv.full_refreshes");
  MOOD_ASSERT_OK(
      db_.Execute("UPDATE VehicleEngine e SET cylinders = 6 WHERE e.cylinders = 2")
          .status());
  ExpectParity({sql});
  EXPECT_EQ(CounterOf(&db_, "mv.full_refreshes"), full0 + 1);
}

TEST_F(MatViewFixture, NonMaintainableShapesFallBackFlagged) {
  // ORDER BY / DISTINCT / GROUP BY reorder or merge rows across roots: the
  // refusal matrix downgrades them to full refresh, never wrong answers.
  const std::vector<std::string> shapes = {
      "SELECT e.cylinders FROM VehicleEngine e ORDER BY e.cylinders",
      "SELECT DISTINCT e.cylinders FROM VehicleEngine e",
      "SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders "
      "HAVING e.cylinders > 2",
  };
  int i = 0;
  for (const std::string& sql : shapes) {
    MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW shape" +
                               std::to_string(i++) + " AS " + sql)
                       .status());
  }
  for (const auto& info : db_.matviews()->Views()) {
    EXPECT_FALSE(info.delta_maintainable) << info.name;
    EXPECT_FALSE(info.refusal.empty()) << info.name;
  }
  ExpectParity(shapes);
  const double full0 = CounterOf(&db_, "mv.full_refreshes");
  MOOD_ASSERT_OK(
      db_.Execute("UPDATE VehicleEngine e SET cylinders = 8 WHERE e.cylinders = 4")
          .status());
  ExpectParity(shapes);
  EXPECT_EQ(CounterOf(&db_, "mv.full_refreshes"), full0 + 3);
}

TEST_F(MatViewFixture, EveryScanWithExcludeIsMaintainable) {
  const std::string sql =
      "SELECT c, c.weight FROM EVERY Automobile - JapaneseAuto c "
      "WHERE c.weight > 900";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW autos AS " + sql).status());
  ASSERT_TRUE(db_.matviews()->Views()[0].delta_maintainable)
      << db_.matviews()->Views()[0].refusal;
  ExpectParity({sql});
  MOOD_ASSERT_OK(
      db_.Execute("UPDATE Automobile a SET weight = 950 WHERE a.weight < 900")
          .status());
  ExpectParity({sql});
}

// ---------------------------------------------------------------------------
// DDL, transactions, snapshots, persistence
// ---------------------------------------------------------------------------

TEST_F(MatViewFixture, SchemaEpochBumpTriggersRebuildNotStaleRows) {
  const std::string sql = "SELECT v, v.weight FROM Vehicle v WHERE v.weight > 1000";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW hv AS " + sql).status());
  MOOD_ASSERT_OK(db_.Query(sql).status());
  const double rebuilds0 = CounterOf(&db_, "mv.rebuilds");
  // Any DDL moves the schema epoch; the next serve re-binds and rebuilds.
  MOOD_ASSERT_OK(
      db_.Execute("CREATE CLASS Scratch TUPLE ( x Integer )").status());
  ExpectParity({sql});
  EXPECT_EQ(CounterOf(&db_, "mv.rebuilds"), rebuilds0 + 1);
}

TEST_F(MatViewFixture, DroppedBaseClassNeverServesStale) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Standalone TUPLE ( x Integer )").status());
  MOOD_ASSERT_OK(db_.Execute("NEW Standalone <1>").status());
  const std::string sql = "SELECT s.x FROM Standalone s";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW sv AS " + sql).status());
  MOOD_ASSERT_OK(db_.Query(sql).status());
  MOOD_ASSERT_OK(db_.Execute("DROP CLASS Standalone").status());
  // The view must not answer from its (stale) materialization: the query now
  // fails exactly like normal execution against a missing class.
  EXPECT_FALSE(db_.Query(sql).ok());
}

TEST_F(MatViewFixture, TransactionsSeeOwnWritesAndAbortLeavesNoTrace) {
  const std::string sql = "SELECT v, v.weight FROM Vehicle v WHERE v.weight > 1000";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW hv AS " + sql).status());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult before, db_.Query(sql));

  {
    // Inside a write transaction the MV path is bypassed (the txn must see its
    // own uncommitted writes).
    MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
    MOOD_ASSERT_OK(db_.Execute("UPDATE Vehicle v SET weight = 5000").status());
    MOOD_ASSERT_OK_AND_ASSIGN(QueryResult inside, db_.Query(sql));
    MOOD_ASSERT_OK_AND_ASSIGN(QueryResult inside_oracle, Oracle(&db_, sql));
    EXPECT_EQ(inside.ToString(), inside_oracle.ToString());
    MOOD_ASSERT_OK(txn.Abort());
  }
  // After the abort the committed state is unchanged, and the view must agree.
  ExpectParity({sql});
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult after, db_.Query(sql));
  EXPECT_EQ(after.ToString(), before.ToString());

  {
    MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
    MOOD_ASSERT_OK(
        db_.Execute("UPDATE Vehicle v SET weight = 1500 WHERE v.weight < 1000")
            .status());
    MOOD_ASSERT_OK(txn.Commit());
  }
  ExpectParity({sql});
}

TEST_F(MatViewFixture, PinnedSnapshotSessionsNeverSeeNewerViewState) {
  const std::string sql = "SELECT v, v.weight FROM Vehicle v WHERE v.weight > 1000";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW hv AS " + sql).status());
  MOOD_ASSERT_OK(db_.Query(sql).status());

  auto reader = db_.CreateSession();
  MOOD_ASSERT_OK(reader->BeginSnapshot());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult pinned_before, reader->Query(sql));

  // A commit after the pin: the pinned session must keep answering at its pin
  // (the view, now newer, must decline), while fresh statements see the write.
  MOOD_ASSERT_OK(db_.Execute("UPDATE Vehicle v SET weight = 5000").status());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult pinned_after, reader->Query(sql));
  EXPECT_EQ(pinned_after.ToString(), pinned_before.ToString());
  MOOD_ASSERT_OK(reader->EndSnapshot());
  ExpectParity({sql});
}

TEST_F(MatViewFixture, ViewsPersistAcrossReopen) {
  const std::string sql = "SELECT v, v.weight FROM Vehicle v WHERE v.weight > 1000";
  MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW hv AS " + sql).status());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult before, db_.Query(sql));
  const std::string path = dir_.Path("mood0");
  MOOD_ASSERT_OK(db_.Close());

  MOOD_ASSERT_OK(db_.Open(path, DatabaseOptions{}));
  ASSERT_EQ(db_.matviews()->view_count(), 1u);
  // First serve after reopen rematerializes (a rebuild, not a full refresh).
  const double hits0 = CounterOf(&db_, "mv.hits");
  const double full0 = CounterOf(&db_, "mv.full_refreshes");
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult served, db_.Query(sql));
  EXPECT_EQ(CounterOf(&db_, "mv.hits"), hits0 + 1);
  EXPECT_EQ(CounterOf(&db_, "mv.full_refreshes"), full0);
  EXPECT_EQ(served.ToString(), before.ToString());
  ExpectParity({sql});
}

// ---------------------------------------------------------------------------
// Randomized differential: MV-served results byte-identical to base execution
// under interleaved INSERT / UPDATE / DELETE / DDL
// ---------------------------------------------------------------------------

TEST_F(MatViewFixture, RandomizedDifferentialZeroDivergence) {
  const std::vector<std::string> queries = {
      // Delta-maintainable: root filter with a reference projection.
      "SELECT v, v.weight, v.company.name FROM Vehicle v WHERE v.weight > 1200",
      // Delta-maintainable: 2-hop path join over the EVERY hierarchy.
      "SELECT c, c.drivetrain.engine.cylinders FROM EVERY Vehicle c "
      "WHERE c.drivetrain.engine.cylinders > 4",
      // Full-refresh fallback: grouping across roots.
      "SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders",
  };
  int i = 0;
  for (const std::string& sql : queries) {
    MOOD_ASSERT_OK(db_.Execute("CREATE MATERIALIZED VIEW rv" +
                               std::to_string(i++) + " AS " + sql)
                       .status());
  }

  Lcg rng(20260809);
  int32_t next_id = 10000;
  int scratch = 0;
  for (int round = 0; round < 40; round++) {
    switch (rng.Uniform(6)) {
      case 0:
        InsertVehicle(&rng, next_id++);
        break;
      case 1:
        MOOD_ASSERT_OK(
            db_.Execute("UPDATE Vehicle v SET weight = " +
                        std::to_string(800 + rng.Uniform(2000)) +
                        " WHERE v.id = " + std::to_string(rng.Uniform(48)))
                .status());
        break;
      case 2:
        MOOD_ASSERT_OK(db_.Execute("DELETE FROM Vehicle v WHERE v.id = " +
                                   std::to_string(rng.Uniform(48)))
                           .status());
        break;
      case 3:
        // Hop write: engines feed both path views.
        MOOD_ASSERT_OK(
            db_.Execute("UPDATE VehicleEngine e SET cylinders = " +
                        std::to_string(2 + 2 * rng.Uniform(16)) +
                        " WHERE e.cylinders = " +
                        std::to_string(2 + 2 * rng.Uniform(16)))
                .status());
        break;
      case 4: {
        // DDL: schema epoch moves; dependents must refresh, never serve stale.
        MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Scratch" +
                                   std::to_string(scratch++) +
                                   " TUPLE ( x Integer )")
                           .status());
        break;
      }
      case 5: {
        // A transaction that sometimes aborts: aborted writes must leave no
        // trace in any view.
        MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
        MOOD_ASSERT_OK(
            db_.Execute("UPDATE Vehicle v SET weight = v.weight + 1 "
                        "WHERE v.weight > 1500")
                .status());
        if (rng.Uniform(2) == 0) {
          MOOD_ASSERT_OK(txn.Commit());
        } else {
          MOOD_ASSERT_OK(txn.Abort());
        }
        break;
      }
    }
    ExpectParity(queries);
  }
  // The rewrite must actually have served (this test is vacuous otherwise).
  EXPECT_GT(CounterOf(&db_, "mv.hits"), 0);
  EXPECT_GT(CounterOf(&db_, "mv.maintenance_rows"), 0);
}

}  // namespace
}  // namespace mood
