#include <gtest/gtest.h>

#include <cmath>

#include "core/database.h"
#include "core/paper_example.h"
#include "cost/disk_params.h"
#include "cost/file_ops.h"
#include "cost/join_costs.h"
#include "stats/approx.h"
#include "stats/selectivity.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

TEST(ApproxTest, CApproxPiecewise) {
  // r < m/2 -> r.
  EXPECT_DOUBLE_EQ(CApprox(1000, 100, 20), 20);
  // m/2 <= r < 2m -> (r+m)/3.
  EXPECT_DOUBLE_EQ(CApprox(1000, 100, 100), 200.0 / 3.0);
  EXPECT_DOUBLE_EQ(CApprox(1000, 100, 150), 250.0 / 3.0);
  // r >= 2m -> m.
  EXPECT_DOUBLE_EQ(CApprox(1000, 100, 200), 100);
  EXPECT_DOUBLE_EQ(CApprox(1000, 100, 100000), 100);
}

TEST(ApproxTest, CApproxTracksYaoWithinTolerance) {
  // The paper: "it has been validated that c(n,m,r) well serves our purposes".
  // Compare against Yao's exact formula over a spread of parameters.
  const uint64_t n = 10000, m = 1000;
  for (uint64_t k : {10u, 100u, 500u, 1000u, 2000u, 5000u}) {
    double exact = YaoExact(n, m, k);
    double approx = CApprox(n, m, k);
    EXPECT_LT(std::abs(exact - approx) / std::max(exact, 1.0), 0.45)
        << "k=" << k << " yao=" << exact << " c=" << approx;
  }
}

TEST(ApproxTest, CardenasMonotoneAndBounded) {
  double prev = 0;
  for (double k = 0; k <= 5000; k += 250) {
    double v = Cardenas(1000, k);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 1000.0);
    prev = v;
  }
}

TEST(ApproxTest, OverlapProbabilityIdentities) {
  // x = 1: o(t,1,y) = y/t.
  EXPECT_NEAR(OverlapProbability(10000, 1, 625), 0.0625, 1e-9);
  EXPECT_NEAR(OverlapProbability(20000, 1, 1), 5.0e-5, 1e-12);
  // Symmetry.
  EXPECT_NEAR(OverlapProbability(1000, 30, 40), OverlapProbability(1000, 40, 30), 1e-9);
  // Bounds and pigeonhole.
  EXPECT_DOUBLE_EQ(OverlapProbability(100, 60, 60), 1.0);
  EXPECT_DOUBLE_EQ(OverlapProbability(100, 0, 10), 0.0);
  // Monotone in y.
  double prev = 0;
  for (double y = 1; y < 100; y += 7) {
    double p = OverlapProbability(1000, 50, y);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(ApproxTest, OverlapProbabilityFractionalY) {
  // The paper multiplies k_m by hitprb, so y is routinely fractional; the
  // Gamma-generalized binomial ratio must be continuous in y and bracketed by
  // the adjacent integer evaluations.
  double lo = OverlapProbability(10000, 50, 3.0);
  double mid = OverlapProbability(10000, 50, 3.5);
  double hi = OverlapProbability(10000, 50, 4.0);
  EXPECT_GT(mid, lo);
  EXPECT_LT(mid, hi);
  // Tiny fractional y degrades smoothly toward zero, never negative.
  double tiny = OverlapProbability(20000, 1, 0.05);
  EXPECT_GT(tiny, 0.0);
  EXPECT_LT(tiny, OverlapProbability(20000, 1, 1.0));
  // x = 1 identity extends to fractional y: o(t,1,y) = y/t.
  EXPECT_NEAR(OverlapProbability(10000, 1, 2.5), 2.5e-4, 1e-9);
}

TEST(ApproxTest, OverlapProbabilityDegenerateInputs) {
  // Pigeonhole: t < x + y forces an overlap.
  EXPECT_DOUBLE_EQ(OverlapProbability(100, 70, 40), 1.0);
  EXPECT_DOUBLE_EQ(OverlapProbability(10, 10, 0.5), 1.0);
  // Empty sets never overlap, whichever side is empty.
  EXPECT_DOUBLE_EQ(OverlapProbability(100, 0, 50), 0.0);
  EXPECT_DOUBLE_EQ(OverlapProbability(100, 50, 0), 0.0);
  // Full-universe set overlaps with anything non-empty.
  EXPECT_DOUBLE_EQ(OverlapProbability(100, 100, 1), 1.0);
}

TEST(ApproxTest, CApproxBracketedByYaoRegimes) {
  // CApprox is exact at the extremes Yao is exact at: r much smaller than m
  // (every record a fresh color) and r past saturation (all colors hit).
  const uint64_t n = 10000, m = 1000;
  EXPECT_NEAR(CApprox(n, m, 5), YaoExact(n, m, 5), 0.05 * YaoExact(n, m, 5));
  EXPECT_DOUBLE_EQ(CApprox(n, m, 10 * m), m);
  EXPECT_NEAR(YaoExact(n, m, 10 * m), m, 1.0);
  // Both stay within [min(r, m)] bounds across the transition band.
  for (uint64_t r : {400u, 600u, 1000u, 1500u, 1999u}) {
    double c = CApprox(n, m, r);
    double y = YaoExact(n, m, r);
    EXPECT_LE(c, m);
    EXPECT_LE(c, static_cast<double>(r));
    EXPECT_LE(y, m + 1e-9);
    EXPECT_LE(y, static_cast<double>(r));
  }
}

TEST(FileOpsTest, SeqAndRndCostFormulas) {
  DiskParameters p;  // defaults: s=16, r=8.3, btt=0.84, ebt=1.0
  EXPECT_DOUBLE_EQ(SeqCost(100, p), 16 + 8.3 + 100 * 1.0);
  EXPECT_DOUBLE_EQ(RndCost(100, p), 100 * (16 + 8.3 + 0.84));
  // The ESM regime: files are B+-trees, sequential == random (Section 5).
  DiskParameters esm = p;
  esm.esm_btree_files = true;
  EXPECT_DOUBLE_EQ(SeqCost(100, esm), RndCost(100, esm));
}

TEST(FileOpsTest, IndCostGrowsWithKeysAndLevels) {
  DiskParameters p;
  BTreeCostParams bt;
  bt.order = 100;
  bt.levels = 3;
  bt.leaves = 1000;
  double one = IndCost(1, bt, p);
  double ten = IndCost(10, bt, p);
  double thousand = IndCost(1000, bt, p);
  EXPECT_GT(one, 0);
  EXPECT_LE(one, ten);
  EXPECT_LT(ten, thousand);
  // One key costs exactly level(I) random accesses.
  EXPECT_DOUBLE_EQ(one, 3 * RndCost(1, p));
  EXPECT_DOUBLE_EQ(IndCost(0, bt, p), 0);
}

TEST(FileOpsTest, RngxCostProportionalToFraction) {
  DiskParameters p;
  BTreeCostParams bt;
  bt.leaves = 500;
  EXPECT_DOUBLE_EQ(RngxCost(0.1, bt, p), 0.1 * 500 * (p.s + p.r + p.btt));
  EXPECT_DOUBLE_EQ(RngxCost(1.0, bt, p), 500 * (p.s + p.r + p.btt));
}

TEST(JoinCostTest, ExpectedPagesSaturates) {
  EXPECT_NEAR(ExpectedPages(100, 1), 1.0, 0.01);
  EXPECT_NEAR(ExpectedPages(100, 100000), 100.0, 0.01);
  EXPECT_LT(ExpectedPages(100, 50), 50.0);  // collisions
}

TEST(JoinCostTest, ForwardTraversalWorstCase) {
  DiskParameters p;
  ImplicitJoinInput in;
  in.k_c = 10;
  in.nbpages_c = 1000;
  in.fan = 2;
  // ~10 source pages + 20 reference chases.
  double expected = RndCost(ExpectedPages(1000, 10), p) + RndCost(20, p);
  EXPECT_DOUBLE_EQ(ForwardTraversalCost(in, p), expected);
  // Already-fetched source drops the first term.
  in.c_accessed_previously = true;
  EXPECT_DOUBLE_EQ(ForwardTraversalCost(in, p), RndCost(20, p));
}

TEST(JoinCostTest, BackwardTraversalFormula) {
  DiskParameters p;
  ImplicitJoinInput in;
  in.k_c = 100;
  in.k_d = 5;
  in.nbpages_c = 200;
  in.nbpages_d = 50;
  in.fan = 1;
  double expected = SeqCost(200, p) + 100 * 1 * 5 * p.cpu_cost + SeqCost(50, p);
  EXPECT_DOUBLE_EQ(BackwardTraversalCost(in, p), expected);
  in.d_accessed_previously = true;
  EXPECT_DOUBLE_EQ(BackwardTraversalCost(in, p),
                   SeqCost(200, p) + 100 * 5 * p.cpu_cost);
}

TEST(JoinCostTest, HashPartitionFormula) {
  DiskParameters p;
  ImplicitJoinInput in;
  in.k_c = 500;
  in.card_c = 1000;
  in.card_d = 1000;
  in.nbpages_c = 100;
  in.nbpages_d = 80;
  in.fan = 1;
  in.totref = 1000;
  double alpha = CApprox(1000, 1000, 500);
  double nbpg = ExpectedPages(80, alpha);
  double expected = 3.0 * 0.5 * SeqCost(100, p) + RndCost(nbpg, p);
  EXPECT_DOUBLE_EQ(HashPartitionJoinCost(in, p), expected);
}

// --- Selectivity with the paper's exact statistics (Tables 13-16) -----------------

class PaperStatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    paperdb::InstallPaperStatistics(db_.stats());
    binder_ = std::make_unique<Binder>(db_.catalog());
  }

  Result<BoundPath> Path(const std::string& dotted) {
    std::vector<std::string> steps;
    size_t start = 0;
    for (;;) {
      size_t dot = dotted.find('.', start);
      if (dot == std::string::npos) {
        steps.push_back(dotted.substr(start));
        break;
      }
      steps.push_back(dotted.substr(start, dot - start));
      start = dot + 1;
    }
    return binder_->ResolvePathFromClass("Vehicle", steps);
  }

  TempDir dir_;
  Database db_;
  std::unique_ptr<Binder> binder_;
};

TEST_F(PaperStatsFixture, DerivedParametersMatchPaper) {
  // totlinks(A,C,D) = fan * |C|; hitprb = totref / |D| (Table 15).
  MOOD_ASSERT_OK_AND_ASSIGN(double totlinks, db_.stats()->TotLinks("Vehicle", "drivetrain"));
  EXPECT_DOUBLE_EQ(totlinks, 20000);
  MOOD_ASSERT_OK_AND_ASSIGN(double hitprb_dt, db_.stats()->HitPrb("Vehicle", "drivetrain"));
  EXPECT_DOUBLE_EQ(hitprb_dt, 1.0);
  MOOD_ASSERT_OK_AND_ASSIGN(double hitprb_co, db_.stats()->HitPrb("Vehicle", "company"));
  EXPECT_DOUBLE_EQ(hitprb_co, 0.1);
}

TEST_F(PaperStatsFixture, AtomicSelectivityFormulas) {
  SelectivityEstimator est(db_.stats());
  // f_s(= c) = 1/dist = 1/16.
  MOOD_ASSERT_OK_AND_ASSIGN(
      double eq, est.AtomicSelectivity("VehicleEngine", "cylinders", BinaryOp::kEq,
                                       MoodValue::Integer(2)));
  EXPECT_DOUBLE_EQ(eq, 1.0 / 16);
  // f_s(> c) = (max - c)/(max - min) = (32-20)/30.
  MOOD_ASSERT_OK_AND_ASSIGN(
      double gt, est.AtomicSelectivity("VehicleEngine", "cylinders", BinaryOp::kGt,
                                       MoodValue::Integer(20)));
  EXPECT_DOUBLE_EQ(gt, 12.0 / 30.0);
  // BETWEEN c1 AND c2 decomposes into >= and <=; the paper's combined formula
  // (c2-c1)/(max-min) equals f(<=c2) + f(>=c1) - 1 under uniformity.
  MOOD_ASSERT_OK_AND_ASSIGN(
      double le, est.AtomicSelectivity("VehicleEngine", "cylinders", BinaryOp::kLe,
                                       MoodValue::Integer(20)));
  MOOD_ASSERT_OK_AND_ASSIGN(
      double ge, est.AtomicSelectivity("VehicleEngine", "cylinders", BinaryOp::kGe,
                                       MoodValue::Integer(10)));
  EXPECT_NEAR(le + ge - 1.0, (20.0 - 10.0) / 30.0, 1e-9);
  // String equality on Company.name: 1/200000.
  MOOD_ASSERT_OK_AND_ASSIGN(
      double name_eq, est.AtomicSelectivity("Company", "name", BinaryOp::kEq,
                                            MoodValue::String("BMW")));
  EXPECT_DOUBLE_EQ(name_eq, 1.0 / 200000);
}

TEST_F(PaperStatsFixture, Table16SelectivitiesExact) {
  SelectivityEstimator est(db_.stats());
  // P1: v.drivetrain.engine.cylinders = 2 -> 6.25e-2.
  MOOD_ASSERT_OK_AND_ASSIGN(BoundPath p1, Path("drivetrain.engine.cylinders"));
  MOOD_ASSERT_OK_AND_ASSIGN(double s1,
                            est.PathSelectivity(p1, BinaryOp::kEq, MoodValue::Integer(2)));
  EXPECT_NEAR(s1, 6.25e-2, 1e-9);
  // P2: v.company.name = 'BMW' -> 5.00e-5.
  MOOD_ASSERT_OK_AND_ASSIGN(BoundPath p2, Path("company.name"));
  MOOD_ASSERT_OK_AND_ASSIGN(double s2, est.PathSelectivity(p2, BinaryOp::kEq,
                                                           MoodValue::String("BMW")));
  EXPECT_NEAR(s2, 5.00e-5, 1e-12);
}

TEST_F(PaperStatsFixture, Table16ForwardCostsExactUnderCalibratedDisk) {
  SelectivityEstimator est(db_.stats());
  DiskParameters disk = PaperCalibratedDiskParameters();
  MOOD_ASSERT_OK_AND_ASSIGN(BoundPath p1, Path("drivetrain.engine.cylinders"));
  MOOD_ASSERT_OK_AND_ASSIGN(BoundPath p2, Path("company.name"));
  MOOD_ASSERT_OK_AND_ASSIGN(double f1, ForwardPathCost(p1, 10, est, disk));
  MOOD_ASSERT_OK_AND_ASSIGN(double f2, ForwardPathCost(p2, 10, est, disk));
  EXPECT_NEAR(f1, 771.825, 1e-6);  // Table 16, P1
  EXPECT_NEAR(f2, 520.825, 1e-6);  // Table 16, P2
  // Ranks: F/(1-s). The paper prints 823.280 for P1.
  EXPECT_NEAR(f1 / (1 - 6.25e-2), 823.28, 1e-2);
}

TEST_F(PaperStatsFixture, FrefChainUsesColorApproximation) {
  SelectivityEstimator est(db_.stats());
  MOOD_ASSERT_OK_AND_ASSIGN(BoundPath p1, Path("drivetrain.engine.cylinders"));
  // Starting from a single vehicle: one drivetrain, one engine.
  MOOD_ASSERT_OK_AND_ASSIGN(double one, est.Fref(p1, 1));
  EXPECT_DOUBLE_EQ(one, 1.0);
  // Starting from all vehicles: saturates at the 10000 distinct engines... the
  // c() approximation gives (r+m)/3 in the middle regime.
  MOOD_ASSERT_OK_AND_ASSIGN(double all, est.Fref(p1, 20000));
  EXPECT_GT(all, 5000.0);
  EXPECT_LE(all, 10000.0);
}

TEST_F(PaperStatsFixture, CollectedStatisticsMatchData) {
  // Measured mode: populate a small instance and verify Collect's numbers.
  MOOD_ASSERT_OK_AND_ASSIGN(auto report, paperdb::PopulatePaperData(&db_, 90));
  MOOD_ASSERT_OK(db_.CollectStatistics("Vehicle"));
  MOOD_ASSERT_OK(db_.CollectStatistics("VehicleEngine"));
  MOOD_ASSERT_OK_AND_ASSIGN(ClassStats vs, db_.stats()->Class("Vehicle"));
  // Only plain vehicles live in the Vehicle extent (subclasses have their own).
  EXPECT_EQ(vs.cardinality, report.vehicles - report.automobiles - report.japanese_autos);
  EXPECT_GT(vs.nbpages, 0u);
  EXPECT_GT(vs.size, 0u);
  MOOD_ASSERT_OK_AND_ASSIGN(AttributeStats cyl,
                            db_.stats()->Attribute("VehicleEngine", "cylinders"));
  EXPECT_GT(cyl.dist, 0u);
  EXPECT_LE(cyl.dist, 16u);
  EXPECT_GE(cyl.min_val, 2);
  EXPECT_LE(cyl.max_val, 32);
  EXPECT_DOUBLE_EQ(cyl.notnull, 1.0);
  MOOD_ASSERT_OK_AND_ASSIGN(ReferenceStats dt,
                            db_.stats()->Reference("Vehicle", "drivetrain"));
  EXPECT_EQ(dt.target_class, "VehicleDriveTrain");
  EXPECT_DOUBLE_EQ(dt.fan, 1.0);
  EXPECT_GT(dt.totref, 0u);
}

}  // namespace
}  // namespace mood
