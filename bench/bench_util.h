#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"

namespace mood::bench {

/// Scratch database directory for a bench binary; removed on destruction.
class BenchDb {
 public:
  explicit BenchDb(const std::string& name) {
    dir_ = std::filesystem::temp_directory_path() / ("mood_bench_" + name);
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~BenchDb() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& file) const { return (dir_ / file).string(); }

 private:
  std::filesystem::path dir_;
};

/// Minimal fixed-width table printer for regenerating the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); c++) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&] {
      std::string out = "+";
      for (size_t c = 0; c < width.size(); c++) {
        out += std::string(width[c] + 2, '-') + "+";
      }
      std::printf("%s\n", out.c_str());
    };
    auto print_row = [&](const std::vector<std::string>& row) {
      std::string out = "|";
      for (size_t c = 0; c < width.size(); c++) {
        std::string cell = c < row.size() ? row[c] : "";
        out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
      }
      std::printf("%s\n", out.c_str());
    };
    line();
    print_row(headers_);
    line();
    for (const auto& row : rows_) print_row(row);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Records pass/fail of shape assertions; returns a process exit code.
class Checks {
 public:
  void Expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failures_++;
  }
  int ExitCode() const { return failures_ == 0 ? 0 : 1; }
  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

/// Dies on a bad status (bench binaries prefer loud failures).
inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(2);
  }
}
template <typename T>
T CheckV(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, r.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(r).value();
}

}  // namespace mood::bench
