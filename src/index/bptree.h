#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"

namespace mood {

/// Statistics kept for a B+-tree index — exactly the parameters of Table 9 of the
/// paper, consumed by INDCOST / RNGXCOST.
struct BPlusTreeStats {
  uint32_t order = 0;       ///< v(I): max entries per node observed at build time
  uint32_t levels = 0;      ///< level(I)
  uint64_t leaves = 0;      ///< leaves(I)
  uint32_t keysize = 0;     ///< keysize(I): average key size (bytes)
  bool unique = false;      ///< unique(I)
  uint64_t entries = 0;     ///< total stored (key, value) pairs
};

/// A disk-resident B+-tree mapping byte-string keys (see key_codec.h) to 64-bit
/// payloads (packed Oids or RecordIds). Supports duplicates unless `unique`.
/// This provides the "B+-tree indexing supported through the Exodus Storage
/// Manager" that IndSel and the indexed join strategies rely on.
///
/// Deletion is lazy (no rebalancing); the tree stays correct, matching the
/// prototype-era behaviour the cost model assumes.
///
/// Thread safety: the const read path (SearchEqual/SearchRange/Scan/stats) is
/// concurrent-read safe — every page access goes through the BufferPool, which
/// serializes frame management internally. Insert/Remove are externally
/// synchronized (DDL and DML never overlap queries; see DESIGN.md §6).
class BPlusTree {
 public:
  /// Creates a fresh tree; its meta page id is the handle to reopen it later.
  static Result<std::unique_ptr<BPlusTree>> Create(BufferPool* pool,
                                                   FileDirectory* alloc, bool unique);
  static Result<std::unique_ptr<BPlusTree>> Open(BufferPool* pool,
                                                 FileDirectory* alloc,
                                                 PageId meta_page);

  PageId meta_page() const { return meta_page_; }

  Status Insert(Slice key, uint64_t value);
  /// Removes one (key, value) pair; NotFound if absent.
  Status Delete(Slice key, uint64_t value);

  /// All payloads stored under exactly `key`.
  Result<std::vector<uint64_t>> SearchEqual(Slice key) const;

  /// Range scan callback; called for each (key, value) with lo <= key <= hi.
  /// A null bound is unbounded on that side.
  Status Scan(const std::string* lo, const std::string* hi,
              const std::function<Status(Slice key, uint64_t value)>& fn) const;

  BPlusTreeStats stats() const;

  /// Recomputed leaf count (walks the leaf chain; used by tests to validate the
  /// incrementally maintained stats).
  Result<uint64_t> CountLeaves() const;

 private:
  BPlusTree(BufferPool* pool, FileDirectory* alloc, PageId meta_page)
      : pool_(pool), alloc_(alloc), meta_page_(meta_page) {}

  /// In-memory image of one node page.
  struct Node {
    PageId id = kInvalidPageId;
    bool leaf = true;
    PageId next = kInvalidPageId;  // leaf chain
    std::vector<std::string> keys;
    std::vector<uint64_t> values;    // leaf payloads
    std::vector<PageId> children;    // internal: keys.size() + 1 children

    size_t SerializedSize() const;
  };

  struct Meta {
    PageId root = kInvalidPageId;
    PageId first_leaf = kInvalidPageId;
    bool unique = false;
    uint32_t levels = 1;
    uint64_t leaves = 1;
    uint64_t entries = 0;
    uint64_t key_bytes = 0;  // running total for average keysize
    uint32_t max_fanout = 0;
  };

  Status LoadMeta();
  Status StoreMeta() const;
  Result<Node> LoadNode(PageId id) const;
  Status StoreNode(const Node& node) const;
  Result<PageId> NewNodePage() const;

  /// Result of a recursive insert: if the child split, `split_key`/`new_page`
  /// describe the new right sibling to add to the parent.
  struct InsertResult {
    bool split = false;
    std::string split_key;
    PageId new_page = kInvalidPageId;
  };
  Result<InsertResult> InsertRec(PageId page, Slice key, uint64_t value);

  /// Page-size budget for a serialized node before it must split.
  static constexpr size_t kNodeCapacity = kPageSize - 64;

  BufferPool* pool_;
  FileDirectory* alloc_;
  PageId meta_page_;
  mutable Meta meta_;
};

}  // namespace mood
