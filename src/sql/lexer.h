#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace mood {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  // punctuation / operators
  kComma,
  kDot,
  kLParen,
  kRParen,
  kLAngle,   // < (also comparison)
  kRAngle,   // > (also comparison)
  kLe,
  kGe,
  kEq,
  kNe,       // <>
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kColon,
  kColonColon,
  kSemicolon,
  kQuestion,  // ? positional parameter
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // identifier / keyword (upper-cased) / literal text
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset for error messages
};

/// Tokenizes MOODSQL text. Keywords are case-insensitive; identifiers keep their
/// case. String literals use single quotes with '' as the escape.
class Lexer {
 public:
  static Result<std::vector<Token>> Tokenize(const std::string& input);
};

/// True if `word` (already upper-cased) is a reserved MOODSQL keyword.
bool IsKeyword(const std::string& upper);

}  // namespace mood
