// Regenerates the MOOD algebra typing tables (paper Tables 1-7) directly from
// the implementation's return-type rules, so any drift between code and paper is
// visible in the output.

#include "algebra/operators.h"
#include "bench/bench_util.h"

using namespace mood;
using namespace mood::bench;

int main() {
  const CollKind kinds[] = {CollKind::kExtent, CollKind::kSet, CollKind::kList,
                            CollKind::kNamedObject};

  Banner("Table 1: return types of the Select operator");
  {
    Table t({"arg type", "Extent", "Set", "List", "Named Obj."});
    std::vector<std::string> row = {"return type"};
    row.push_back(std::string(CollKindName(SelectReturnKind(CollKind::kExtent, false))) +
                  " or " + std::string(CollKindName(SelectReturnKind(CollKind::kExtent, true))));
    row.push_back(std::string(CollKindName(SelectReturnKind(CollKind::kSet))));
    row.push_back(std::string(CollKindName(SelectReturnKind(CollKind::kList))));
    row.push_back(std::string(CollKindName(SelectReturnKind(CollKind::kNamedObject))));
    t.AddRow(row);
    t.Print();
  }

  Banner("Table 2: return types of the Join operator (rows: arg2, cols: arg1)");
  {
    Table t({"arg2 \\ arg1", "Extent", "Set", "List", "Named Obj."});
    for (CollKind arg2 : kinds) {
      std::vector<std::string> row = {std::string(CollKindName(arg2))};
      for (CollKind arg1 : kinds) {
        CollKind out = JoinReturnKind(arg1, arg2);
        row.push_back(out == CollKind::kNamedObject ? "Object"
                                                    : std::string(CollKindName(out)));
      }
      t.AddRow(row);
    }
    t.Print();
  }

  Banner("Table 3: return types of the DupElim operator");
  {
    Table t({"type of arg", "DupElim(arg)"});
    for (CollKind k : {CollKind::kSet, CollKind::kList, CollKind::kExtent}) {
      auto rule = DupElimReturn(k);
      t.AddRow({std::string(CollKindName(k)),
                rule.has_value() ? *rule : "not applicable"});
    }
    t.Print();
  }

  Banner("Table 4: return types of Union / Intersection / Difference");
  {
    Table t({"args", "Set", "List"});
    for (CollKind a : {CollKind::kSet, CollKind::kList}) {
      std::vector<std::string> row = {std::string(CollKindName(a))};
      for (CollKind b : {CollKind::kSet, CollKind::kList}) {
        auto out = SetOpReturnKind(a, b);
        row.push_back(out.ok() ? std::string(CollKindName(out.value())) : "error");
      }
      t.AddRow(row);
    }
    t.Print();
  }

  Banner("Table 5: elements of the result of asSet / asList");
  {
    Table t({"type of arg", "elements of the resulting set or list"});
    for (CollKind k : kinds) {
      t.AddRow({std::string(CollKindName(k)), AsSetListElements(k)});
    }
    t.Print();
  }

  Banner("Table 6: return types of the asExtent operator");
  {
    Table t({"type of arg", "asExtent(arg)"});
    for (CollKind k : {CollKind::kSet, CollKind::kList, CollKind::kExtent}) {
      auto out = AsExtentReturn(k);
      t.AddRow({std::string(CollKindName(k)),
                out.ok() ? out.value() : "error: " + out.status().ToString()});
    }
    t.Print();
  }

  Banner("Table 7: argument types accepted by the Unnest operator");
  {
    Table t({"argument", "accepted"});
    t.AddRow({"Extent of tuple type objects", UnnestAccepts(CollKind::kExtent, false) ? "yes" : "no"});
    t.AddRow({"Set(oids of tuple type objects)", UnnestAccepts(CollKind::kSet, false) ? "yes" : "no"});
    t.AddRow({"List(oids of tuple type objects)", UnnestAccepts(CollKind::kList, false) ? "yes" : "no"});
    t.AddRow({"A tuple type object", UnnestAccepts(CollKind::kNamedObject, true) ? "yes" : "no"});
    t.Print();
  }

  // Cross-check the full Table 2 matrix against the paper's published values.
  Checks checks;
  Banner("Paper conformance checks");
  const CollKind expected[4][4] = {
      {CollKind::kExtent, CollKind::kExtent, CollKind::kExtent, CollKind::kExtent},
      {CollKind::kExtent, CollKind::kSet, CollKind::kSet, CollKind::kSet},
      {CollKind::kExtent, CollKind::kSet, CollKind::kList, CollKind::kList},
      {CollKind::kExtent, CollKind::kSet, CollKind::kList, CollKind::kNamedObject}};
  bool table2_ok = true;
  for (int r = 0; r < 4; r++) {
    for (int c = 0; c < 4; c++) {
      if (JoinReturnKind(kinds[c], kinds[r]) != expected[r][c]) table2_ok = false;
    }
  }
  checks.Expect(table2_ok, "Table 2 join matrix matches the paper");
  checks.Expect(!DupElimReturn(CollKind::kSet).has_value(),
                "Table 3: DupElim(Set) is 'not applicable'");
  checks.Expect(SetOpReturnKind(CollKind::kList, CollKind::kList).value() == CollKind::kList,
                "Table 4: List x List stays a List (union = concatenation)");
  return checks.ExitCode();
}
