#include "storage/buffer_pool.h"

#include <cstdlib>
#include <thread>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace mood {

namespace {

/// Each auto-selected shard keeps at least this many frames so tiny pools
/// (the 8-frame concurrency-test pools) stay a single shard and cannot be
/// exhausted by splitting their few frames into slivers.
constexpr size_t kMinAutoFramesPerShard = 8;

size_t ResolveShardCount(size_t requested, size_t pool_size) {
  size_t target;
  if (requested == 0) {
    size_t hw = std::thread::hardware_concurrency();
    target = hw > 4 ? hw : 4;
    size_t cap = pool_size / kMinAutoFramesPerShard;
    if (cap == 0) cap = 1;
    if (target > cap) target = cap;
  } else {
    target = requested;
    if (pool_size > 0 && target > pool_size) target = pool_size;
  }
  if (target == 0) target = 1;
  size_t pow2 = 1;
  while (pow2 * 2 <= target) pow2 *= 2;
  return pow2;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t pool_size, size_t shards)
    : disk_(disk), pool_size_(pool_size) {
  size_t n = ResolveShardCount(shards, pool_size);
  shard_mask_ = n - 1;
  shards_.reserve(n);
  size_t base = pool_size / n;
  size_t rem = pool_size % n;
  for (size_t i = 0; i < n; i++) {
    auto shard = std::make_unique<Shard>();
    size_t frames = base + (i < rem ? 1 : 0);
    shard->frames = std::vector<Page>(frames);
    shard->ref.assign(frames, 0);
    for (size_t f = 0; f < frames; f++) shard->free_frames.push_back(f);
    shards_.push_back(std::move(shard));
  }
}

size_t BufferPool::ShardOf(PageId page_id) const {
  // splitmix64 finalizer: adjacent page ids (a sequential chain) spread across
  // shards instead of marching through one shard at a time.
  uint64_t x = static_cast<uint64_t>(page_id) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x & shard_mask_);
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    size_t idx = shard.free_frames.front();
    shard.free_frames.pop_front();
    return idx;
  }
  size_t n = shard.frames.size();
  // Two full sweeps suffice: the first pass clears every ref bit that was set,
  // the second must find an unpinned frame if one exists.
  for (size_t visited = 0; visited < 2 * n; visited++) {
    size_t idx = shard.clock_hand;
    shard.clock_hand = (shard.clock_hand + 1) % n;
    Page& frame = shard.frames[idx];
    if (frame.pin_count() > 0) continue;
    if (shard.ref[idx] != 0) {
      shard.ref[idx] = 0;
      continue;
    }
    if (frame.dirty()) {
      if (auto fp = CheckFailPoint("pool.evict")) {
        if (fp->crash()) std::abort();
        return fp->Error("pool.evict");
      }
      if (pre_flush_hook_) MOOD_RETURN_IF_ERROR(pre_flush_hook_(frame));
      MOOD_RETURN_IF_ERROR(disk_->WritePage(frame.page_id(), frame.data()));
    }
    shard.page_table.erase(frame.page_id());
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }
  return Status::Internal("buffer pool exhausted: all pages in shard pinned");
}

Status BufferPool::ReadIntoFrame(Shard& shard, size_t idx, PageId page_id) {
  Page& page = shard.frames[idx];
  page.Reset(page_id);
  MOOD_RETURN_IF_ERROR(disk_->ReadPage(page_id, page.data()));
  shard.ref[idx] = 1;
  shard.page_table[page_id] = idx;
  return Status::OK();
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it != shard.page_table.end()) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    Page& page = shard.frames[it->second];
    shard.ref[it->second] = 1;
    page.Pin();
    return &page;
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(shard));
  Status st = ReadIntoFrame(shard, idx, page_id);
  if (!st.ok()) {
    shard.free_frames.push_back(idx);
    return st;
  }
  Page& page = shard.frames[idx];
  page.Pin();
  return &page;
}

Result<Page*> BufferPool::FetchPageTolerant(PageId page_id, bool* corrupted) {
  *corrupted = false;
  MOOD_RETURN_IF_ERROR(disk_->EnsureAllocated(page_id));
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it != shard.page_table.end()) {
    shard.hits.fetch_add(1, std::memory_order_relaxed);
    Page& page = shard.frames[it->second];
    shard.ref[it->second] = 1;
    page.Pin();
    return &page;
  }
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  MOOD_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(shard));
  Status st = ReadIntoFrame(shard, idx, page_id);
  if (st.IsCorruption()) {
    // Torn/corrupt frame: hand recovery a zeroed image (page LSN 0) so redo
    // re-applies the logged full image. Deliberately not marked dirty — if no
    // record covers the page, the disk keeps the corrupt frame for detection.
    *corrupted = true;
    Page& page = shard.frames[idx];
    page.Reset(page_id);
    shard.ref[idx] = 1;
    shard.page_table[page_id] = idx;
  } else if (!st.ok()) {
    shard.free_frames.push_back(idx);
    return st;
  }
  Page& page = shard.frames[idx];
  page.Pin();
  return &page;
}

Result<Page*> BufferPool::NewPage() {
  MOOD_ASSIGN_OR_RETURN(PageId page_id, disk_->AllocatePage());
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  MOOD_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(shard));
  Page& page = shard.frames[idx];
  page.Reset(page_id);
  page.Pin();
  page.set_dirty(true);
  shard.ref[idx] = 1;
  shard.page_table[page_id] = idx;
  return &page;
}

Status BufferPool::Prefetch(PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.page_table.find(page_id) != shard.page_table.end()) {
    return Status::OK();  // already resident
  }
  auto victim = GetVictimFrame(shard);
  if (!victim.ok()) return Status::OK();  // shard under pin pressure: skip
  MOOD_RETURN_IF_ERROR(ReadIntoFrame(shard, victim.value(), page_id));
  shard.prefetches.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) {
    return Status::InvalidArgument("UnpinPage: page not resident");
  }
  Page& page = shard.frames[it->second];
  if (page.pin_count() <= 0) {
    return Status::Internal("UnpinPage: pin count underflow");
  }
  if (dirty) page.set_dirty(true);
  page.Unpin();
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  Shard& shard = *shards_[ShardOf(page_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find(page_id);
  if (it == shard.page_table.end()) return Status::OK();
  Page& page = shard.frames[it->second];
  if (page.dirty()) {
    if (pre_flush_hook_) MOOD_RETURN_IF_ERROR(pre_flush_hook_(page));
    MOOD_RETURN_IF_ERROR(disk_->WritePage(page.page_id(), page.data()));
    page.set_dirty(false);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [page_id, idx] : shard->page_table) {
      Page& page = shard->frames[idx];
      if (page.dirty()) {
        if (pre_flush_hook_) MOOD_RETURN_IF_ERROR(pre_flush_hook_(page));
        MOOD_RETURN_IF_ERROR(disk_->WritePage(page.page_id(), page.data()));
        page.set_dirty(false);
      }
    }
  }
  return Status::OK();
}

BufferPoolStats BufferPool::ShardStats(size_t shard_idx) const {
  BufferPoolStats s;
  const Shard& shard = *shards_[shard_idx];
  // Evictions before misses: both grow monotonically and every eviction is
  // caused by an earlier miss (or NewPage), so a lagging snapshot stays
  // consistent with "evictions <= misses + free frames".
  s.evictions = shard.evictions.load(std::memory_order_relaxed);
  s.prefetches = shard.prefetches.load(std::memory_order_relaxed);
  s.misses = shard.misses.load(std::memory_order_relaxed);
  s.hits = shard.hits.load(std::memory_order_relaxed);
  return s;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (size_t i = 0; i < shards_.size(); i++) {
    BufferPoolStats s = ShardStats(i);
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.prefetches += s.prefetches;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    shard->hits.store(0, std::memory_order_relaxed);
    shard->misses.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
    shard->prefetches.store(0, std::memory_order_relaxed);
  }
}

size_t BufferPool::PinnedPageCount() const {
  size_t pinned = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [page_id, idx] : shard->page_table) {
      if (shard->frames[idx].pin_count() > 0) pinned++;
    }
  }
  return pinned;
}

void BufferPool::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterProbe(
      "bufferpool", [this](std::vector<std::pair<std::string, double>>* out) {
        BufferPoolStats total = stats();
        out->emplace_back("bufferpool.hits", static_cast<double>(total.hits));
        out->emplace_back("bufferpool.misses", static_cast<double>(total.misses));
        out->emplace_back("bufferpool.evictions",
                          static_cast<double>(total.evictions));
        out->emplace_back("bufferpool.prefetches",
                          static_cast<double>(total.prefetches));
        out->emplace_back("bufferpool.fetches",
                          static_cast<double>(total.hits + total.misses));
        out->emplace_back("bufferpool.pool_pages", static_cast<double>(pool_size_));
        out->emplace_back("bufferpool.shards", static_cast<double>(shards_.size()));
        out->emplace_back("bufferpool.pinned_pages",
                          static_cast<double>(PinnedPageCount()));
        out->emplace_back("bufferpool.readahead_depth",
                          static_cast<double>(readahead()));
        for (size_t i = 0; i < shards_.size(); i++) {
          BufferPoolStats s = ShardStats(i);
          std::string prefix = "bufferpool.shard" + std::to_string(i) + ".";
          out->emplace_back(prefix + "hits", static_cast<double>(s.hits));
          out->emplace_back(prefix + "misses", static_cast<double>(s.misses));
          out->emplace_back(prefix + "evictions", static_cast<double>(s.evictions));
          out->emplace_back(prefix + "prefetches",
                            static_cast<double>(s.prefetches));
        }
      });
}

}  // namespace mood
