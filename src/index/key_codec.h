#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "types/value.h"

namespace mood {

/// Order-preserving key encodings: encoded keys compare with memcmp in the same
/// order as the source values, which lets the B+-tree stay a byte-string tree.
///
/// Integers are sign-flipped big-endian; doubles use the standard IEEE-754 total
/// order trick; strings are raw bytes. One index always holds keys of one type, so
/// cross-type ordering never arises.
void EncodeIndexKey(const MoodValue& v, std::string* dst);

/// Convenience wrapper returning the encoded key.
std::string MakeIndexKey(const MoodValue& v);

}  // namespace mood
