#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mood {

struct FeedbackOptions {
  size_t max_entries = 256;           ///< LRU capacity
  uint64_t refresh_epoch_delta = 256; ///< write-epoch churn before invalidation
};

/// Running means of measured per-operation costs, sampled from profiled
/// executions (BIND wall-time / pages, join wall-time / derefs, filter
/// wall-time / predicate evaluations). Once Valid(), the optimizer swaps the
/// paper's 1994 disk parameters for these — which is what lets it see that a
/// residual filter over an already-bound extent is cheaper than expanding a
/// pointer-join chain on modern hardware.
class CostCalibration {
 public:
  void AddPage(double ms_per_page);
  void AddDeref(double ms_per_deref);
  void AddPredicate(double ms_per_predicate);

  /// Page and deref samples both present — enough to price plans coherently.
  bool Valid() const;
  double MsPerPage() const;
  double MsPerDeref() const;
  double MsPerPredicate() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  double page_ms_ = 0, deref_ms_ = 0, pred_ms_ = 0;  ///< running means
  uint64_t pages_ = 0, derefs_ = 0, preds_ = 0;      ///< sample counts
};

/// Bounded LRU of measured selectivities keyed by normalized predicate
/// signature (e.g. "Company.name = 'BMW'" or "Vehicle.manufacturer.name: =
/// 'BMW'"). Entries remember the catalog schema epoch and the extent file's
/// write epoch at record time; Lookup drops entries whose schema epoch moved
/// or whose file churned past refresh_epoch_delta writes, so stale
/// measurements cannot steer the optimizer after DDL or heavy update traffic.
class FeedbackStore {
 public:
  struct Entry {
    double selectivity = 0;
    uint64_t schema_epoch = 0;
    uint64_t write_epoch = 0;
    uint16_t file = 0;
  };

  void Configure(const FeedbackOptions& opts);

  void Record(const std::string& sig, double selectivity, uint64_t schema_epoch,
              uint16_t file, uint64_t write_epoch);

  /// Returns true and fills *selectivity when a still-valid entry exists.
  /// Invalid entries are erased and counted in invalidations().
  bool Lookup(const std::string& sig, uint64_t cur_schema_epoch, uint16_t file,
              uint64_t cur_write_epoch, double* selectivity);

  void Clear();
  size_t size() const;
  uint64_t invalidations() const { return invalidations_; }

 private:
  struct Node {
    std::string sig;
    Entry entry;
  };

  void Touch(std::list<Node>::iterator it);

  mutable std::mutex mu_;
  FeedbackOptions opts_;
  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  uint64_t invalidations_ = 0;
};

}  // namespace mood
