// Compiled expression programs vs the interpreted Evaluator: runs
// filter-heavy queries with QueryOptions::compile_expressions on and off and
// reports per-query medians, speedups, and result parity. Separates pure
// scalar predicates (slot + arithmetic, no pointer chasing) from path-bound
// ones (multi-step deref), since the deref cost dilutes the eval win.

#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"
#include "sql/parser.h"

using namespace mood;
using namespace mood::bench;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

double MedianMs(Database* db, const std::string& sql, bool compile, int iters) {
  QueryOptions opts;
  opts.compile_expressions = compile;
  opts.exec_threads = 1;  // isolate eval cost from morsel scheduling
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; i++) {
    auto start = std::chrono::steady_clock::now();
    CheckV(db->Query(sql, opts), sql.c_str());
    ms.push_back(MillisSince(start));
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = WantJson(argc, argv);
  JsonReport report_json("bench_expr_eval");
  BenchDb scratch("expr_eval");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  auto report = CheckV(paperdb::PopulatePaperData(&db, 800), "populate");
  Check(db.CollectAllStatistics(), "collect");
  std::printf("scale: %llu vehicles, %llu engines\n",
              (unsigned long long)report.vehicles,
              (unsigned long long)report.engines);

  struct Query {
    const char* label;
    const char* key;
    std::string sql;
    bool pure_scalar;  ///< no multi-step deref: expect exec.expr.fallback == 0
  };
  // No secondary indexes exist in this bench, so every WHERE clause is
  // evaluated row by row — exactly the path under measurement.
  std::vector<Query> queries = {
      {"scalar arithmetic filter", "scalar_arith",
       "SELECT e FROM VehicleEngine e WHERE e.cylinders * 3 + 1 > 10 AND "
       "e.cylinders < 12",
       true},
      {"scalar comparison chain", "scalar_cmp",
       "SELECT e FROM VehicleEngine e WHERE e.cylinders >= 2 AND e.cylinders <= 8 "
       "AND NOT (e.cylinders = 5) AND e.size > 0 AND e.size < 100000",
       true},
      {"const-foldable filter", "const_fold",
       "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 + 2 AND 1 + 1 = 2",
       true},
      {"single path step", "path1",
       "SELECT v FROM Vehicle v WHERE v.company.name = 'BMW'", false},
      {"three path steps (Example 8.2)", "path3", paperdb::kExample82Query, false},
      {"projection-heavy select", "projection",
       "SELECT e.cylinders, e.cylinders * 2, e.cylinders + 100 FROM VehicleEngine e "
       "WHERE e.cylinders > 0",
       true},
  };

  const int kIters = 15;
  Checks checks;
  Banner("Compiled vs interpreted expression evaluation (median of 15, t=1)");
  Table t({"query", "interpreted ms", "compiled ms", "speedup", "rows"});
  MetricCounter* fallback = db.metrics()->Counter("exec.expr.fallback");
  for (const auto& q : queries) {
    QueryOptions off, on;
    off.compile_expressions = false;
    auto oracle = CheckV(db.Query(q.sql, off), q.label);
    uint64_t fallback_before = fallback->value();
    auto compiled_res = CheckV(db.Query(q.sql, on), q.label);
    checks.Expect(compiled_res.ToString() == oracle.ToString(),
                  std::string(q.label) + ": compiled matches interpreted");
    if (q.pure_scalar) {
      checks.Expect(fallback->value() == fallback_before,
                    std::string(q.label) + ": no runtime fallback");
    }

    double interp_ms = MedianMs(&db, q.sql, /*compile=*/false, kIters);
    double comp_ms = MedianMs(&db, q.sql, /*compile=*/true, kIters);
    report_json.Metric("interpreted_ms", q.key, interp_ms);
    report_json.Metric("compiled_ms", q.key, comp_ms);
    report_json.Metric("speedup", q.key, interp_ms / std::max(comp_ms, 0.001));
    t.AddRow({q.label, Fmt(interp_ms, 3), Fmt(comp_ms, 3),
              Fmt(interp_ms / std::max(comp_ms, 0.001), 2) + "x",
              std::to_string(oracle.rows.size())});
  }
  t.Print();
  std::printf(
      "scalar filters isolate the eval loop (slot load + arithmetic per row);\n"
      "path-bound queries still pay object fetches per step, so the compiled\n"
      "win narrows as deref cost dominates.\n");
  if (json) {
    AddMetricsSnapshot(&report_json, db.metrics());
    report_json.Emit(JsonPath(argc, argv));
  }
  return checks.ExitCode();
}
