#include "sql/dnf.h"

#include "types/operand.h"

namespace mood {

namespace {

bool IsLiteral(const ExprPtr& e) { return e->kind == ExprKind::kLiteral; }

/// Evaluates a binary op over two literals via the run-time interpreter.
Result<MoodValue> EvalLiteral(BinaryOp op, const MoodValue& a, const MoodValue& b) {
  OperandDataType x = OperandDataType::FromValue(a);
  OperandDataType y = OperandDataType::FromValue(b);
  OperandDataType r(DataTypeCode::kInt32);
  switch (op) {
    case BinaryOp::kAdd: r = x + y; break;
    case BinaryOp::kSub: r = x - y; break;
    case BinaryOp::kMul: r = x * y; break;
    case BinaryOp::kDiv: r = x / y; break;
    case BinaryOp::kMod: r = x % y; break;
    case BinaryOp::kEq: r = (x == y); break;
    case BinaryOp::kNe: r = (x != y); break;
    case BinaryOp::kLt: r = (x < y); break;
    case BinaryOp::kLe: r = (x <= y); break;
    case BinaryOp::kGt: r = (x > y); break;
    case BinaryOp::kGe: r = (x >= y); break;
    case BinaryOp::kAnd: r = (x && y); break;
    case BinaryOp::kOr: r = (x || y); break;
  }
  return r.ToValue();
}

BinaryOp NegateComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return BinaryOp::kNe;
    case BinaryOp::kNe: return BinaryOp::kEq;
    case BinaryOp::kLt: return BinaryOp::kGe;
    case BinaryOp::kLe: return BinaryOp::kGt;
    case BinaryOp::kGt: return BinaryOp::kLe;
    case BinaryOp::kGe: return BinaryOp::kLt;
    default: return op;
  }
}

}  // namespace

Result<ExprPtr> FoldConstants(const ExprPtr& expr) {
  switch (expr->kind) {
    case ExprKind::kLiteral:
    case ExprKind::kPath:
    case ExprKind::kParameter:
      return expr;
    case ExprKind::kUnary: {
      MOOD_ASSIGN_OR_RETURN(ExprPtr inner, FoldConstants(expr->operand));
      if (IsLiteral(inner)) {
        if (expr->uop == UnaryOp::kNeg) {
          OperandDataType v = OperandDataType::FromValue(inner->literal);
          MOOD_ASSIGN_OR_RETURN(MoodValue folded, (-v).ToValue());
          return Expr::Literal(std::move(folded));
        }
        OperandDataType v = OperandDataType::FromValue(inner->literal);
        MOOD_ASSIGN_OR_RETURN(MoodValue folded, (!v).ToValue());
        return Expr::Literal(std::move(folded));
      }
      if (inner == expr->operand) return expr;
      return Expr::Unary(expr->uop, std::move(inner));
    }
    case ExprKind::kBinary: {
      MOOD_ASSIGN_OR_RETURN(ExprPtr lhs, FoldConstants(expr->lhs));
      MOOD_ASSIGN_OR_RETURN(ExprPtr rhs, FoldConstants(expr->rhs));
      if (IsLiteral(lhs) && IsLiteral(rhs)) {
        MOOD_ASSIGN_OR_RETURN(MoodValue folded,
                              EvalLiteral(expr->op, lhs->literal, rhs->literal));
        return Expr::Literal(std::move(folded));
      }
      if (lhs == expr->lhs && rhs == expr->rhs) return expr;
      return Expr::Binary(expr->op, std::move(lhs), std::move(rhs));
    }
  }
  return expr;
}

ExprPtr PushNotDown(const ExprPtr& expr, bool negate) {
  switch (expr->kind) {
    case ExprKind::kLiteral: {
      if (negate && expr->literal.kind() == ValueKind::kBoolean) {
        return Expr::Literal(MoodValue::Boolean(!expr->literal.AsBoolean()));
      }
      return negate ? Expr::Unary(UnaryOp::kNot, expr) : expr;
    }
    case ExprKind::kPath:
    case ExprKind::kParameter:
      return negate ? Expr::Unary(UnaryOp::kNot, expr) : expr;
    case ExprKind::kUnary: {
      if (expr->uop == UnaryOp::kNot) return PushNotDown(expr->operand, !negate);
      return negate ? Expr::Unary(UnaryOp::kNot, expr) : expr;
    }
    case ExprKind::kBinary: {
      if (expr->op == BinaryOp::kAnd || expr->op == BinaryOp::kOr) {
        BinaryOp op = expr->op;
        if (negate) op = (op == BinaryOp::kAnd) ? BinaryOp::kOr : BinaryOp::kAnd;
        return Expr::Binary(op, PushNotDown(expr->lhs, negate),
                            PushNotDown(expr->rhs, negate));
      }
      if (negate && IsComparison(expr->op)) {
        return Expr::Binary(NegateComparison(expr->op), expr->lhs, expr->rhs);
      }
      return negate ? Expr::Unary(UnaryOp::kNot, expr) : expr;
    }
  }
  return expr;
}

std::vector<AndTerm> ToDnf(const ExprPtr& expr) {
  if (expr->kind == ExprKind::kBinary && expr->op == BinaryOp::kOr) {
    auto left = ToDnf(expr->lhs);
    auto right = ToDnf(expr->rhs);
    left.insert(left.end(), right.begin(), right.end());
    return left;
  }
  if (expr->kind == ExprKind::kBinary && expr->op == BinaryOp::kAnd) {
    auto left = ToDnf(expr->lhs);
    auto right = ToDnf(expr->rhs);
    // Cross product: (A1 | A2) & (B1 | B2) = A1B1 | A1B2 | A2B1 | A2B2.
    std::vector<AndTerm> out;
    out.reserve(left.size() * right.size());
    for (const auto& l : left) {
      for (const auto& r : right) {
        AndTerm term = l;
        term.insert(term.end(), r.begin(), r.end());
        out.push_back(std::move(term));
      }
    }
    return out;
  }
  return {AndTerm{expr}};
}

Result<std::vector<AndTerm>> NormalizePredicate(const ExprPtr& expr) {
  MOOD_ASSIGN_OR_RETURN(ExprPtr folded, FoldConstants(expr));
  ExprPtr normalized = PushNotDown(folded);
  return ToDnf(normalized);
}

}  // namespace mood
