#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/page.h"

namespace mood {

enum class LogRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kPageWrite = 4,
  kCheckpoint = 5,
};

/// A decoded log record. Page-write records carry full before/after page images
/// (physical logging): redo/undo stay trivially correct and idempotent when paired
/// with page LSNs.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  uint64_t txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  PageId page_id = kInvalidPageId;
  std::string before;
  std::string after;
};

/// Append-only write-ahead log backed by one file. Provides the "backup and
/// recovery" kernel function the paper obtains from the Exodus Storage Manager.
class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Status Open(const std::string& path);
  Status Close();

  Result<Lsn> AppendBegin(uint64_t txn_id);
  Result<Lsn> AppendCommit(uint64_t txn_id);
  Result<Lsn> AppendAbort(uint64_t txn_id);
  Result<Lsn> AppendPageWrite(uint64_t txn_id, PageId page, Slice before, Slice after);
  Result<Lsn> AppendCheckpoint();

  /// Forces buffered log records to stable storage.
  Status Flush();

  /// Reads every record currently in the log, in LSN order.
  Status ReadAll(std::vector<LogRecord>* out);

  /// Discards the log contents (after a checkpoint has flushed all data pages).
  Status Truncate();

  Lsn last_lsn() const { return next_lsn_ - 1; }
  bool is_open() const { return fd_ >= 0; }

 private:
  Result<Lsn> Append(LogRecordType type, uint64_t txn_id, PageId page, Slice before,
                     Slice after);

  int fd_ = -1;
  std::string path_;
  Lsn next_lsn_ = 1;
  std::string buffer_;  // unflushed tail
  mutable std::mutex mu_;
};

}  // namespace mood
