#include "moodview/dag_layout.h"

#include <algorithm>
#include <set>

namespace mood {

void DagLayout::AddNode(const std::string& name) {
  if (std::find(nodes_.begin(), nodes_.end(), name) == nodes_.end()) {
    nodes_.push_back(name);
  }
}

void DagLayout::AddEdge(const std::string& from, const std::string& to) {
  AddNode(from);
  AddNode(to);
  edges_.emplace_back(from, to);
}

Status DagLayout::Compute() {
  positions_.clear();
  // Longest-path layering via repeated relaxation (graphs are small schemas).
  std::map<std::string, int> layer;
  for (const auto& n : nodes_) layer[n] = 0;
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    if (++guard > static_cast<int>(nodes_.size()) + 2) {
      return Status::InvalidArgument("inheritance graph contains a cycle");
    }
    for (const auto& [from, to] : edges_) {
      if (layer[to] < layer[from] + 1) {
        layer[to] = layer[from] + 1;
        changed = true;
      }
    }
  }
  layer_count_ = 0;
  for (const auto& [n, l] : layer) layer_count_ = std::max(layer_count_, l + 1);

  // Initial order: insertion order within each layer.
  std::vector<std::vector<std::string>> layers(static_cast<size_t>(layer_count_));
  for (const auto& n : nodes_) layers[static_cast<size_t>(layer[n])].push_back(n);

  // Barycenter sweeps: order each layer by the mean position of its neighbors in
  // the adjacent layer, alternating downward and upward.
  auto order_index = [&](const std::vector<std::string>& row,
                         const std::string& name) {
    for (size_t i = 0; i < row.size(); i++) {
      if (row[i] == name) return static_cast<double>(i);
    }
    return -1.0;
  };
  for (int sweep = 0; sweep < 4; sweep++) {
    bool down = (sweep % 2 == 0);
    for (int l = down ? 1 : layer_count_ - 2; down ? l < layer_count_ : l >= 0;
         l += down ? 1 : -1) {
      auto& row = layers[static_cast<size_t>(l)];
      auto& adj = layers[static_cast<size_t>(down ? l - 1 : l + 1)];
      std::stable_sort(row.begin(), row.end(), [&](const std::string& a,
                                                   const std::string& b) {
        auto barycenter = [&](const std::string& n) {
          double sum = 0;
          int count = 0;
          for (const auto& [from, to] : edges_) {
            const std::string* other = nullptr;
            if (down && to == n) other = &from;
            if (!down && from == n) other = &to;
            if (other != nullptr) {
              double idx = order_index(adj, *other);
              if (idx >= 0) {
                sum += idx;
                count++;
              }
            }
          }
          return count == 0 ? 1e9 : sum / count;
        };
        return barycenter(a) < barycenter(b);
      });
    }
  }

  for (int l = 0; l < layer_count_; l++) {
    for (size_t i = 0; i < layers[static_cast<size_t>(l)].size(); i++) {
      positions_[layers[static_cast<size_t>(l)][i]] =
          DagPosition{l, static_cast<int>(i)};
    }
  }
  return Status::OK();
}

int DagLayout::CountCrossings() const {
  // Two edges (a->b), (c->d) between the same pair of adjacent layers cross when
  // their endpoints interleave.
  int crossings = 0;
  for (size_t i = 0; i < edges_.size(); i++) {
    for (size_t j = i + 1; j < edges_.size(); j++) {
      auto pa = positions_.at(edges_[i].first);
      auto pb = positions_.at(edges_[i].second);
      auto pc = positions_.at(edges_[j].first);
      auto pd = positions_.at(edges_[j].second);
      if (pa.layer != pc.layer || pb.layer != pd.layer) continue;
      int u = pa.order - pc.order;
      int v = pb.order - pd.order;
      if ((u < 0 && v > 0) || (u > 0 && v < 0)) crossings++;
    }
  }
  return crossings;
}

std::string DagLayout::Render() const {
  std::string out;
  for (int l = 0; l < layer_count_; l++) {
    std::vector<std::string> row;
    for (const auto& [n, pos] : positions_) {
      if (pos.layer == l) row.push_back(n);
    }
    std::sort(row.begin(), row.end(), [&](const std::string& a, const std::string& b) {
      return positions_.at(a).order < positions_.at(b).order;
    });
    out += "layer " + std::to_string(l) + ": ";
    for (size_t i = 0; i < row.size(); i++) {
      if (i > 0) out += "   ";
      out += "[" + row[i] + "]";
    }
    out += "\n";
    // Edge summary below each non-final layer.
    if (l + 1 < layer_count_) {
      std::string links;
      for (const auto& [from, to] : edges_) {
        if (positions_.at(from).layer == l && positions_.at(to).layer == l + 1) {
          if (!links.empty()) links += ", ";
          links += from + " -> " + to;
        }
      }
      if (!links.empty()) out += "         " + links + "\n";
    }
  }
  return out;
}

}  // namespace mood
