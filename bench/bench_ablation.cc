// Ablations over the reproduction's calibration choices (DESIGN.md):
//   A1 — the max(1, k_m * hitprb) clamp in path selectivity: without it the
//        paper's Table 16 value for P2 is impossible (5e-6, not 5.00e-5).
//   A2 — the k0 = 10 root-object convention behind the F values: the ordering
//        decision (P2 before P1) is invariant across k0, only the absolute F
//        values move; k0 = 10 is the unique value matching the paper.
//   A3 — disk-profile sensitivity: Example 8.1's path ordering and Example
//        8.2's greedy first pick survive switching from the calibrated profile
//        to Salzberg textbook constants (the decisions are robust; only the
//        absolute costs are calibration-dependent).

#include "bench/bench_util.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "cost/join_costs.h"
#include "stats/approx.h"
#include "stats/selectivity.h"

using namespace mood;
using namespace mood::bench;

int main() {
  BenchDb scratch("ablation");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  paperdb::InstallPaperStatistics(db.stats());
  SelectivityEstimator est(db.stats());
  Binder binder(db.catalog());
  Checks checks;

  BoundPath p1 = CheckV(
      binder.ResolvePathFromClass("Vehicle", {"drivetrain", "engine", "cylinders"}),
      "p1");
  BoundPath p2 = CheckV(binder.ResolvePathFromClass("Vehicle", {"company", "name"}),
                        "p2");

  Banner("A1: the >=1-object clamp in path selectivity (P2)");
  {
    // With the clamp (the implementation): o(20000, 1, max(1, 1 * 0.1)).
    double with_clamp = CheckV(
        est.PathSelectivity(p2, BinaryOp::kEq, MoodValue::String("BMW")), "sel");
    // Without the clamp: y = k_m * hitprb = 0.1 (fractional).
    double without_clamp = OverlapProbability(20000, 1, 0.1);
    Table t({"variant", "P2 selectivity", "paper Table 16"});
    t.AddRow({"with max(1, k_m*hitprb) clamp", FmtSci(with_clamp), "5.00e-05"});
    t.AddRow({"raw formula (no clamp)", FmtSci(without_clamp), "-"});
    t.Print();
    checks.Expect(std::abs(with_clamp - 5e-5) < 1e-12,
                  "clamped formula reproduces 5.00e-05");
    checks.Expect(without_clamp < 1e-5,
                  "unclamped formula gives ~5e-6: cannot reproduce Table 16");
  }

  Banner("A2: root-object count k0 behind the F values");
  {
    DiskParameters disk = PaperCalibratedDiskParameters();
    Table t({"k0", "F(P1)", "F(P2)", "rank(P1)", "rank(P2)", "order"});
    bool order_invariant = true;
    for (double k0 : {1.0, 5.0, 10.0, 50.0, 100.0}) {
      double f1 = CheckV(ForwardPathCost(p1, k0, est, disk), "f1");
      double f2 = CheckV(ForwardPathCost(p2, k0, est, disk), "f2");
      double r1 = f1 / (1 - 6.25e-2);
      double r2 = f2 / (1 - 5e-5);
      if (!(r2 < r1)) order_invariant = false;
      t.AddRow({Fmt(k0, 0), Fmt(f1), Fmt(f2), Fmt(r1), Fmt(r2),
                r2 < r1 ? "P2 first" : "P1 first"});
    }
    t.Print();
    checks.Expect(order_invariant, "P2-before-P1 ordering is invariant in k0");
    double f1_10 = CheckV(ForwardPathCost(p1, 10, est, disk), "f1");
    checks.Expect(std::abs(f1_10 - 771.825) < 1e-6,
                  "k0 = 10 is the value matching the paper's absolute F");
  }

  Banner("A3: disk-profile sensitivity of the optimizer's decisions");
  {
    Table t({"profile", "path order", "Ex. 8.2 first pick"});
    for (bool calibrated : {true, false}) {
      OptimizerOptions opts;
      opts.disk = calibrated ? PaperCalibratedDiskParameters() : DiskParameters{};
      QueryOptimizer opt(db.catalog(), db.objects(), db.stats(), opts);
      auto parsed81 = Parser::Parse(paperdb::kExample81Query).value();
      auto o81 = CheckV(opt.Optimize(std::get<SelectStmt>(parsed81)), "o81");
      std::string order = o81.terms[0].paths[0].path.ToString() == "v.company.name"
                              ? "P2 first"
                              : "P1 first";
      auto parsed82 = Parser::Parse(paperdb::kExample82Query).value();
      auto o82 = CheckV(opt.Optimize(std::get<SelectStmt>(parsed82)), "o82");
      std::string plan = o82.plan->ToString();
      // The inner-most join of the Example 8.2 plan.
      std::string first_pick =
          plan.find("JOIN(BIND(VehicleDriveTrain") != std::string::npos
              ? "drivetrain-engine (as in paper)"
              : "vehicle-drivetrain";
      t.AddRow({calibrated ? "paper-calibrated" : "salzberg-default", order,
                first_pick});
      if (calibrated) {
        checks.Expect(order == "P2 first", "calibrated: Example 8.1 order matches");
      } else {
        checks.Expect(order == "P2 first",
                      "salzberg profile: the ordering decision is robust");
      }
    }
    t.Print();
  }
  return checks.ExitCode();
}
