#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <set>
#include <thread>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/slotted_page.h"
#include "storage/storage_manager.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

TEST(DiskManagerTest, AllocateReadWrite) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p0, disk.AllocatePage());
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p1, disk.AllocatePage());
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  MOOD_ASSERT_OK(disk.WritePage(p1, buf));
  char out[kPageSize];
  MOOD_ASSERT_OK(disk.ReadPage(p1, out));
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);
  EXPECT_EQ(disk.num_pages(), 2u);
}

TEST(DiskManagerTest, OutOfRangeReadFails) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  char out[kPageSize];
  EXPECT_TRUE(disk.ReadPage(5, out).IsInvalidArgument());
}

TEST(DiskManagerTest, ClassifiesSequentialVsRandomReads) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  for (int i = 0; i < 10; i++) MOOD_ASSERT_OK(disk.AllocatePage().status());
  char out[kPageSize];
  disk.ResetStats();
  for (PageId p = 0; p < 10; p++) MOOD_ASSERT_OK(disk.ReadPage(p, out));
  EXPECT_EQ(disk.stats().sequential_reads, 9u);  // first read is "random"
  MOOD_ASSERT_OK(disk.ReadPage(3, out));
  EXPECT_EQ(disk.stats().random_reads, 2u);
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  TempDir dir;
  {
    DiskManager disk;
    MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
    MOOD_ASSERT_OK(disk.AllocatePage().status());
    char buf[kPageSize];
    std::memset(buf, 0x17, kPageSize);
    MOOD_ASSERT_OK(disk.WritePage(0, buf));
    MOOD_ASSERT_OK(disk.Sync());
  }
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  EXPECT_EQ(disk.num_pages(), 1u);
  char out[kPageSize];
  MOOD_ASSERT_OK(disk.ReadPage(0, out));
  EXPECT_EQ(out[100], 0x17);
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  BufferPool pool(&disk, 4);
  MOOD_ASSERT_OK_AND_ASSIGN(Page* p, pool.NewPage());
  PageId id = p->page_id();
  MOOD_ASSERT_OK(pool.UnpinPage(id, true));
  MOOD_ASSERT_OK_AND_ASSIGN(Page* again, pool.FetchPage(id));
  EXPECT_EQ(again->page_id(), id);
  EXPECT_EQ(pool.stats().hits, 1u);
  MOOD_ASSERT_OK(pool.UnpinPage(id, false));
}

TEST(BufferPoolTest, EvictsLruAndWritesBack) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  BufferPool pool(&disk, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 3; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(Page* p, pool.NewPage());
    p->data()[0] = static_cast<char>('a' + i);
    ids.push_back(p->page_id());
    MOOD_ASSERT_OK(pool.UnpinPage(p->page_id(), true));
  }
  // Page 0 was evicted to make room; fetch it back and verify the content.
  MOOD_ASSERT_OK_AND_ASSIGN(Page* p0, pool.FetchPage(ids[0]));
  EXPECT_EQ(p0->data()[0], 'a');
  MOOD_ASSERT_OK(pool.UnpinPage(ids[0], false));
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  BufferPool pool(&disk, 2);
  MOOD_ASSERT_OK_AND_ASSIGN(Page* a, pool.NewPage());
  MOOD_ASSERT_OK_AND_ASSIGN(Page* b, pool.NewPage());
  (void)a;
  (void)b;
  // Both frames pinned: a third page cannot be placed.
  auto r = pool.NewPage();
  EXPECT_FALSE(r.ok());
  MOOD_ASSERT_OK(pool.UnpinPage(a->page_id(), false));
  MOOD_ASSERT_OK_AND_ASSIGN(Page* c, pool.NewPage());
  MOOD_ASSERT_OK(pool.UnpinPage(b->page_id(), false));
  MOOD_ASSERT_OK(pool.UnpinPage(c->page_id(), false));
}

TEST(BufferPoolTest, ChecksumFailureSurfacesAsCorruption) {
  TempDir dir;
  std::string path = dir.Path("db");
  PageId id = 0;
  {
    DiskManager disk;
    MOOD_ASSERT_OK(disk.Open(path));
    BufferPool pool(&disk, 2);
    MOOD_ASSERT_OK_AND_ASSIGN(Page* p, pool.NewPage());
    id = p->page_id();
    std::memset(p->data(), 0x42, kPageSize);
    MOOD_ASSERT_OK(pool.UnpinPage(id, true));
    MOOD_ASSERT_OK(pool.FlushAll());
    MOOD_ASSERT_OK(disk.Sync());
  }
  // Flip a payload byte of the frame on disk, behind the pool's back.
  {
    FILE* f = fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    long off = static_cast<long>(id) * kDiskFrameSize + kPageFrameHeaderSize + 7;
    ASSERT_EQ(fseek(f, off, SEEK_SET), 0);
    int c = fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(fseek(f, off, SEEK_SET), 0);
    fputc(c ^ 0x80, f);
    fclose(f);
  }
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(path));
  BufferPool pool(&disk, 2);
  Status st = pool.FetchPage(id).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(disk.stats().checksum_failures, 1u);
  // The failed fetch released its frame: the pool still has both to give.
  MOOD_ASSERT_OK_AND_ASSIGN(Page* a, pool.NewPage());
  MOOD_ASSERT_OK_AND_ASSIGN(Page* b, pool.NewPage());
  MOOD_ASSERT_OK(pool.UnpinPage(a->page_id(), false));
  MOOD_ASSERT_OK(pool.UnpinPage(b->page_id(), false));
}

TEST(BufferPoolTest, TolerantFetchRebuildsCorruptFrameZeroed) {
  TempDir dir;
  std::string path = dir.Path("db");
  {
    DiskManager disk;
    MOOD_ASSERT_OK(disk.Open(path));
    BufferPool pool(&disk, 2);
    MOOD_ASSERT_OK_AND_ASSIGN(Page* p, pool.NewPage());
    std::memset(p->data(), 0x42, kPageSize);
    MOOD_ASSERT_OK(pool.UnpinPage(p->page_id(), true));
    MOOD_ASSERT_OK(pool.FlushAll());
  }
  {
    FILE* f = fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fseek(f, kPageFrameHeaderSize + 99, SEEK_SET), 0);
    fputc(0x13, f);
    fclose(f);
  }
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(path));
  BufferPool pool(&disk, 2);
  bool corrupted = false;
  MOOD_ASSERT_OK_AND_ASSIGN(Page* p, pool.FetchPageTolerant(0, &corrupted));
  EXPECT_TRUE(corrupted);
  // The frame comes back zero-filled (page LSN 0) so recovery's full images
  // redo on top of it.
  for (size_t i = 0; i < kPageSize; i++) {
    ASSERT_EQ(p->data()[i], 0) << "at offset " << i;
  }
  MOOD_ASSERT_OK(pool.UnpinPage(0, false));
  // An intact page fetched tolerantly is reported clean.
  corrupted = true;
  // (page 0 is now cached; re-fetch hits the buffer, so use the cached copy)
  MOOD_ASSERT_OK_AND_ASSIGN(Page* again, pool.FetchPageTolerant(0, &corrupted));
  EXPECT_FALSE(corrupted);
  MOOD_ASSERT_OK(pool.UnpinPage(again->page_id(), false));
}

TEST(BufferPoolTest, UnpinUnknownPageFails) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  BufferPool pool(&disk, 2);
  EXPECT_FALSE(pool.UnpinPage(99, false).ok());
}

TEST(BufferPoolTest, StatsResetRacesWithFetchesCoherently) {
  // stats()/ResetStats() are atomic-counter based: a reset racing a fetch loop
  // must neither tear a snapshot nor lose fetches counted after the reset.
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  BufferPool pool(&disk, 2);
  MOOD_ASSERT_OK_AND_ASSIGN(Page* p, pool.NewPage());
  PageId id = p->page_id();
  MOOD_ASSERT_OK(pool.UnpinPage(id, true));

  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load()) {
      BufferPoolStats s = pool.stats();
      // hits/misses are unsigned; a torn read would show absurd values.
      EXPECT_LT(s.hits, 1u << 30);
      EXPECT_LE(s.evictions, s.misses + 2);
      pool.ResetStats();
    }
  });
  constexpr size_t kFetches = 5000;
  for (size_t i = 0; i < kFetches; i++) {
    MOOD_ASSERT_OK(pool.FetchPage(id).status());
    MOOD_ASSERT_OK(pool.UnpinPage(id, false));
  }
  stop = true;
  resetter.join();

  // After the dust settles the counters behave exactly as single-threaded.
  pool.ResetStats();
  for (int i = 0; i < 10; i++) {
    MOOD_ASSERT_OK(pool.FetchPage(id).status());
    MOOD_ASSERT_OK(pool.UnpinPage(id, false));
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 10u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(pool.PinnedPageCount(), 0u);
}

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }
  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, InsertAndGet) {
  MOOD_ASSERT_OK_AND_ASSIGN(SlotId s0, sp_.Insert("hello"));
  MOOD_ASSERT_OK_AND_ASSIGN(SlotId s1, sp_.Insert("world!"));
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  MOOD_ASSERT_OK_AND_ASSIGN(Slice v0, sp_.Get(s0));
  MOOD_ASSERT_OK_AND_ASSIGN(Slice v1, sp_.Get(s1));
  EXPECT_EQ(v0.ToString(), "hello");
  EXPECT_EQ(v1.ToString(), "world!");
  EXPECT_EQ(sp_.LiveCount(), 2);
}

TEST_F(SlottedPageTest, DeleteFreesSlot) {
  MOOD_ASSERT_OK_AND_ASSIGN(SlotId s0, sp_.Insert("abc"));
  MOOD_ASSERT_OK(sp_.Delete(s0));
  EXPECT_FALSE(sp_.Get(s0).ok());
  EXPECT_TRUE(sp_.Delete(s0).IsNotFound());
  // Dead slot is reused.
  MOOD_ASSERT_OK_AND_ASSIGN(SlotId s1, sp_.Insert("def"));
  EXPECT_EQ(s1, s0);
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  MOOD_ASSERT_OK_AND_ASSIGN(SlotId s, sp_.Insert(std::string(100, 'a')));
  MOOD_ASSERT_OK(sp_.Update(s, "short"));
  MOOD_ASSERT_OK_AND_ASSIGN(Slice v, sp_.Get(s));
  EXPECT_EQ(v.ToString(), "short");
  MOOD_ASSERT_OK(sp_.Update(s, std::string(500, 'b')));
  MOOD_ASSERT_OK_AND_ASSIGN(Slice v2, sp_.Get(s));
  EXPECT_EQ(v2.size(), 500u);
}

TEST_F(SlottedPageTest, FullPageRejectsInsert) {
  std::string big(1000, 'x');
  int inserted = 0;
  while (sp_.Insert(big).ok()) inserted++;
  EXPECT_GT(inserted, 0);
  EXPECT_LT(inserted, 5);
  // A small record may still fit.
  EXPECT_EQ(sp_.LiveCount(), inserted);
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  std::string big(900, 'x');
  std::vector<SlotId> slots;
  for (;;) {
    auto r = sp_.Insert(big);
    if (!r.ok()) break;
    slots.push_back(r.value());
  }
  ASSERT_GE(slots.size(), 3u);
  // Delete every other record, then a same-size insert must succeed through
  // compaction.
  for (size_t i = 0; i < slots.size(); i += 2) MOOD_ASSERT_OK(sp_.Delete(slots[i]));
  MOOD_ASSERT_OK(sp_.Insert(big).status());
}

TEST_F(SlottedPageTest, GrowUpdateRestoresOnFailure) {
  std::string big(1800, 'x');
  MOOD_ASSERT_OK_AND_ASSIGN(SlotId a, sp_.Insert(big));
  MOOD_ASSERT_OK(sp_.Insert(big).status());
  // Growing `a` beyond available space must fail but keep the old record.
  EXPECT_FALSE(sp_.Update(a, std::string(3000, 'y')).ok());
  MOOD_ASSERT_OK_AND_ASSIGN(Slice v, sp_.Get(a));
  EXPECT_EQ(v.size(), big.size());
  EXPECT_EQ(v[0], 'x');
}

TEST_F(SlottedPageTest, RecordTooLargeForAnyPage) {
  EXPECT_TRUE(sp_.Insert(std::string(kPageSize, 'x')).status().IsInvalidArgument());
}

TEST_F(SlottedPageTest, LsnAndNextPageHeaderFields) {
  sp_.set_lsn(12345);
  sp_.set_next_page(77);
  EXPECT_EQ(sp_.lsn(), 12345u);
  EXPECT_EQ(sp_.next_page(), 77u);
}

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db")));
    MOOD_ASSERT_OK_AND_ASSIGN(file_id_, storage_.CreateFile());
    MOOD_ASSERT_OK_AND_ASSIGN(file_, storage_.GetFile(file_id_));
  }
  TempDir dir_;
  StorageManager storage_;
  FileId file_id_ = kInvalidFileId;
  HeapFile* file_ = nullptr;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert("record-1"));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file_->Get(rid));
  EXPECT_EQ(rec, "record-1");
  EXPECT_EQ(file_->record_count(), 1u);
  MOOD_ASSERT_OK(file_->Delete(rid));
  EXPECT_FALSE(file_->Get(rid).ok());
  EXPECT_EQ(file_->record_count(), 0u);
}

TEST_F(HeapFileTest, SpansManyPages) {
  std::vector<RecordId> rids;
  std::string payload(300, 'p');
  for (int i = 0; i < 200; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid,
                              file_->Insert(payload + std::to_string(i)));
    rids.push_back(rid);
  }
  EXPECT_GT(file_->page_count(), 10u);
  for (int i = 0; i < 200; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file_->Get(rids[static_cast<size_t>(i)]));
    EXPECT_EQ(rec, payload + std::to_string(i));
  }
}

TEST_F(HeapFileTest, GrowingUpdateForwardsButRidStable) {
  // Fill the first page so a grown record must move.
  std::vector<RecordId> rids;
  for (int i = 0; i < 12; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert(std::string(300, 'a')));
    rids.push_back(rid);
  }
  RecordId victim = rids[0];
  std::string grown(2000, 'z');
  MOOD_ASSERT_OK(file_->Update(victim, grown));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file_->Get(victim));
  EXPECT_EQ(rec, grown);
  // Update the forwarded record again (both in-place and grow paths).
  MOOD_ASSERT_OK(file_->Update(victim, "tiny"));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec2, file_->Get(victim));
  EXPECT_EQ(rec2, "tiny");
  std::string grown2(3000, 'w');
  MOOD_ASSERT_OK(file_->Update(victim, grown2));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec3, file_->Get(victim));
  EXPECT_EQ(rec3, grown2);
  // Deleting through the forward removes it from scans.
  MOOD_ASSERT_OK(file_->Delete(victim));
  size_t count = 0;
  for (auto it = file_->Begin(); it.Valid(); it.Next()) count++;
  EXPECT_EQ(count, rids.size() - 1);
}

TEST_F(HeapFileTest, IteratorSeesAllLiveRecordsOnce) {
  std::set<std::string> expected;
  for (int i = 0; i < 50; i++) {
    std::string rec = "r" + std::to_string(i);
    MOOD_ASSERT_OK(file_->Insert(rec).status());
    expected.insert(rec);
  }
  std::set<std::string> seen;
  for (auto it = file_->Begin(); it.Valid(); it.Next()) {
    EXPECT_TRUE(seen.insert(it.record()).second) << "duplicate " << it.record();
  }
  EXPECT_EQ(seen, expected);
}

TEST_F(HeapFileTest, IteratorFollowsForwardsWithoutDuplicates) {
  std::vector<RecordId> rids;
  for (int i = 0; i < 12; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid,
                              file_->Insert(std::string(300, 'a') + std::to_string(i)));
    rids.push_back(rid);
  }
  MOOD_ASSERT_OK(file_->Update(rids[1], std::string(2500, 'q')));
  size_t count = 0;
  bool saw_grown = false;
  for (auto it = file_->Begin(); it.Valid(); it.Next()) {
    count++;
    if (it.record().size() == 2500) saw_grown = true;
  }
  EXPECT_EQ(count, 12u);
  EXPECT_TRUE(saw_grown);
}

TEST_F(HeapFileTest, PersistsAcrossReopen) {
  MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file_->Insert("persistent"));
  MOOD_ASSERT_OK(storage_.Close());
  StorageManager reopened;
  MOOD_ASSERT_OK(reopened.Open(dir_.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, reopened.GetFile(file_id_));
  MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file->Get(rid));
  EXPECT_EQ(rec, "persistent");
  EXPECT_EQ(file->record_count(), 1u);
}

TEST(StorageManagerTest, ManyFilesAndDirectoryChaining) {
  TempDir dir;
  StorageManager storage;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db")));
  // More files than one directory page holds (capacity ~170).
  std::vector<FileId> ids;
  for (int i = 0; i < 200; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(FileId id, storage.CreateFile());
    ids.push_back(id);
  }
  for (FileId id : ids) {
    MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * f, storage.GetFile(id));
    MOOD_ASSERT_OK(f->Insert("file" + std::to_string(id)).status());
  }
  MOOD_ASSERT_OK(storage.Close());
  StorageManager reopened;
  MOOD_ASSERT_OK(reopened.Open(dir.Path("db")));
  for (FileId id : ids) {
    MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * f, reopened.GetFile(id));
    EXPECT_EQ(f->record_count(), 1u);
    auto it = f->Begin();
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.record(), "file" + std::to_string(id));
  }
}

TEST(StorageManagerTest, UnknownFileIsNotFound) {
  TempDir dir;
  StorageManager storage;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db")));
  EXPECT_TRUE(storage.GetFile(999).status().IsNotFound());
}

/// Property-style sweep: random insert/update/delete against an in-memory model.
class HeapFileFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeapFileFuzzTest, MatchesModel) {
  TempDir dir;
  StorageManager storage;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(FileId fid, storage.CreateFile());
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetFile(fid));

  Random rng(GetParam());
  std::map<std::string, std::string> model;  // key(rid string) -> payload
  std::map<std::string, RecordId> rids;
  for (int step = 0; step < 600; step++) {
    int action = static_cast<int>(rng.Uniform(3));
    if (action == 0 || model.empty()) {
      std::string payload(1 + rng.Uniform(800), static_cast<char>('a' + rng.Uniform(26)));
      MOOD_ASSERT_OK_AND_ASSIGN(RecordId rid, file->Insert(payload));
      std::string key = std::to_string(rid.page) + ":" + std::to_string(rid.slot);
      model[key] = payload;
      rids[key] = rid;
    } else {
      size_t pick = rng.Uniform(model.size());
      auto it = model.begin();
      std::advance(it, static_cast<long>(pick));
      if (action == 1) {
        std::string payload(1 + rng.Uniform(1500),
                            static_cast<char>('A' + rng.Uniform(26)));
        MOOD_ASSERT_OK(file->Update(rids[it->first], payload));
        it->second = payload;
      } else {
        MOOD_ASSERT_OK(file->Delete(rids[it->first]));
        rids.erase(it->first);
        model.erase(it);
      }
    }
  }
  // Verify every record by RID and by scan.
  for (const auto& [key, payload] : model) {
    MOOD_ASSERT_OK_AND_ASSIGN(std::string rec, file->Get(rids[key]));
    EXPECT_EQ(rec, payload);
  }
  size_t scanned = 0;
  for (auto it = file->Begin(); it.Valid(); it.Next()) scanned++;
  EXPECT_EQ(scanned, model.size());
  EXPECT_EQ(file->record_count(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFileFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mood
