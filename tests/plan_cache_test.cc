#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/paper_example.h"
#include "exec/plan_cache.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// Thread counts for the racing-writer test. MOOD_TEST_THREADS=<n> narrows the
/// sweep to one count — the sanitizer CTest presets register plan_cache_test_t2
/// / _t8 variants that way to bound runtime.
std::vector<size_t> TestThreadCounts() {
  const char* env = std::getenv("MOOD_TEST_THREADS");
  if (env != nullptr && std::atoi(env) > 0) {
    return {static_cast<size_t>(std::atoi(env))};
  }
  return {2, 8};
}

/// Deterministic PRNG for the randomized differential (no global rand state).
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

double CounterOf(Database* db, const std::string& name) {
  return db->metrics()->Snapshot().ValueOf(name, -1);
}

// ---------------------------------------------------------------------------
// NormalizeSql
// ---------------------------------------------------------------------------

TEST(NormalizeSqlTest, WhitespaceKeywordCaseAndSemicolons) {
  const std::string canon = NormalizeSql("SELECT v FROM Vehicle v");
  EXPECT_FALSE(canon.empty());
  EXPECT_EQ(NormalizeSql("select   v\n from Vehicle v ;"), canon);
  EXPECT_EQ(NormalizeSql("SELECT v FROM Vehicle v;;"), canon);
  // EXPLAIN variants key like the bare SELECT (the cache stores SELECT plans).
  EXPECT_EQ(NormalizeSql("EXPLAIN SELECT v FROM Vehicle v"), canon);
  EXPECT_EQ(NormalizeSql("EXPLAIN ANALYZE VERBOSE SELECT v FROM Vehicle v"), canon);
  // Identifiers keep their case: Vehicle != vehicle as a class name.
  EXPECT_NE(NormalizeSql("SELECT v FROM vehicle v"), canon);
  // String literals survive normalization with quoting intact.
  std::string s = NormalizeSql("SELECT c FROM Company c WHERE c.name = 'O''Brien'");
  EXPECT_NE(s.find("'O''Brien'"), std::string::npos);
  // Unlexable input cannot be keyed (callers bypass the cache on "").
  EXPECT_EQ(NormalizeSql("SELECT \x01"), "");
}

TEST(NormalizeSqlTest, ParamSignatureAndValueKey) {
  std::vector<MoodValue> ints = {MoodValue::Integer(2)};
  std::vector<MoodValue> floats = {MoodValue::Float(2.0)};
  // int-vs-float is a *type* collision: same SQL, different signature.
  EXPECT_NE(ParamTypeSignature(ints), ParamTypeSignature(floats));
  EXPECT_NE(ParamValueKey(ints), ParamValueKey(floats));
  // ...and different values of the same type differ only in the value key.
  std::vector<MoodValue> ints4 = {MoodValue::Integer(4)};
  EXPECT_EQ(ParamTypeSignature(ints), ParamTypeSignature(ints4));
  EXPECT_NE(ParamValueKey(ints), ParamValueKey(ints4));
}

// ---------------------------------------------------------------------------
// Fixture: paper schema + data, caches on
// ---------------------------------------------------------------------------

class PlanCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override { OpenWith(8, 1u << 20); }

  void OpenWith(size_t plan_entries, size_t result_bytes) {
    if (db_.is_open()) MOOD_ASSERT_OK(db_.Close());
    DatabaseOptions opts;
    opts.exec_threads = 1;
    opts.plan_cache_entries = plan_entries;
    opts.result_cache_bytes = result_bytes;
    // A fresh file per (re-)open: re-running the schema DDL on a persisted
    // database would fail with AlreadyExists.
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood" + std::to_string(opens_++)), opts));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 60));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
  int opens_ = 0;
};

TEST_F(PlanCacheFixture, HitMissAccounting) {
  const std::string sql = "SELECT e FROM VehicleEngine e WHERE e.cylinders > 4";
  const double miss0 = CounterOf(&db_, "cache.plan.misses");
  const double hit0 = CounterOf(&db_, "cache.plan.hits");

  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult cold, db_.Query(sql));
  EXPECT_EQ(CounterOf(&db_, "cache.plan.misses"), miss0 + 1);
  EXPECT_EQ(CounterOf(&db_, "cache.plan.hits"), hit0);
  EXPECT_EQ(db_.plan_cache()->size(), 1u);

  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult warm, db_.Query(sql));
  EXPECT_EQ(CounterOf(&db_, "cache.plan.hits"), hit0 + 1);
  EXPECT_EQ(cold.ToString(), warm.ToString());

  // Textually different but normalization-equivalent spellings share an entry.
  MOOD_ASSERT_OK(db_.Query("select e from VehicleEngine e where e.cylinders > 4;").status());
  EXPECT_EQ(CounterOf(&db_, "cache.plan.hits"), hit0 + 2);
  EXPECT_EQ(db_.plan_cache()->size(), 1u);

  // use_cache = false is the uncached oracle: no probe, no insert.
  QueryOptions no_cache;
  no_cache.use_cache = false;
  const double miss1 = CounterOf(&db_, "cache.plan.misses");
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult oracle, db_.Query(sql, no_cache));
  EXPECT_EQ(CounterOf(&db_, "cache.plan.misses"), miss1);
  EXPECT_EQ(oracle.ToString(), cold.ToString());
}

TEST_F(PlanCacheFixture, ResultCacheHitsAndParamValueKeying) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      PreparedStatement ps,
      db_.Prepare("SELECT e FROM VehicleEngine e WHERE e.cylinders > ?"));
  EXPECT_EQ(ps.param_count(), 1u);

  const double rhit0 = CounterOf(&db_, "cache.result.hits");
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult r4, ps.Query({MoodValue::Integer(4)}));
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult r4b, ps.Query({MoodValue::Integer(4)}));
  EXPECT_EQ(CounterOf(&db_, "cache.result.hits"), rhit0 + 1);
  EXPECT_EQ(r4.ToString(), r4b.ToString());

  // A different bound value may not reuse the ?=4 result.
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult r8, ps.Query({MoodValue::Integer(8)}));
  EXPECT_EQ(CounterOf(&db_, "cache.result.hits"), rhit0 + 1);
  QueryOptions no_cache;
  no_cache.use_cache = false;
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult r8_oracle,
                            ps.Query({MoodValue::Integer(8)}, no_cache));
  EXPECT_EQ(r8.ToString(), r8_oracle.ToString());
}

TEST_F(PlanCacheFixture, IntVsFloatParamSignaturesGetSeparatePlans) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      PreparedStatement ps,
      db_.Prepare("SELECT e FROM VehicleEngine e WHERE e.cylinders > ?"));
  const double miss0 = CounterOf(&db_, "cache.plan.misses");
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult ri, ps.Query({MoodValue::Integer(4)}));
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult rf, ps.Query({MoodValue::Float(4.0)}));
  // Same SQL, different type signature: two plan-cache entries, two misses.
  EXPECT_EQ(CounterOf(&db_, "cache.plan.misses"), miss0 + 2);
  EXPECT_EQ(db_.plan_cache()->size(), 2u);
  // 4 and 4.0 compare equally in MOODSQL, so the rows agree even though the
  // plans (and the result-cache keys) are distinct.
  EXPECT_EQ(ri.ToString(), rf.ToString());
}

TEST_F(PlanCacheFixture, LruEvictionAccounting) {
  OpenWith(/*plan_entries=*/2, /*result_bytes=*/0);
  const double evict0 = CounterOf(&db_, "cache.plan.evictions");
  MOOD_ASSERT_OK(db_.Query("SELECT v FROM Vehicle v").status());
  MOOD_ASSERT_OK(db_.Query("SELECT e FROM VehicleEngine e").status());
  EXPECT_EQ(db_.plan_cache()->size(), 2u);
  // Touch the first so the second is the LRU victim.
  MOOD_ASSERT_OK(db_.Query("SELECT v FROM Vehicle v").status());
  MOOD_ASSERT_OK(db_.Query("SELECT c FROM Company c").status());
  EXPECT_EQ(db_.plan_cache()->size(), 2u);
  EXPECT_EQ(CounterOf(&db_, "cache.plan.evictions"), evict0 + 1);

  const double hit0 = CounterOf(&db_, "cache.plan.hits");
  MOOD_ASSERT_OK(db_.Query("SELECT v FROM Vehicle v").status());  // survived (MRU)
  EXPECT_EQ(CounterOf(&db_, "cache.plan.hits"), hit0 + 1);
  const double miss0 = CounterOf(&db_, "cache.plan.misses");
  MOOD_ASSERT_OK(db_.Query("SELECT e FROM VehicleEngine e").status());  // evicted
  EXPECT_EQ(CounterOf(&db_, "cache.plan.misses"), miss0 + 1);
}

TEST_F(PlanCacheFixture, DdlInvalidatesAndReportsSchemaEpoch) {
  const std::string sql = "SELECT v FROM Vehicle v WHERE v.weight > 0";
  MOOD_ASSERT_OK(db_.Query(sql).status());
  MOOD_ASSERT_OK(db_.Query(sql).status());
  const double inval0 = CounterOf(&db_, "cache.plan.invalidations");

  // Any DDL bumps the schema epoch; the ExecResult reports the epoch produced
  // so invalidation is observable without poking internals.
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult ddl,
      db_.Execute("CREATE CLASS CacheProbe TUPLE ( n Integer )"));
  EXPECT_EQ(ddl.kind, ExecResult::Kind::kDdl);
  EXPECT_GT(ddl.schema_epoch, 0u);

  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult idx, db_.Execute("CREATE INDEX probe_n ON CacheProbe(n) USING BTREE"));
  EXPECT_GT(idx.schema_epoch, ddl.schema_epoch);

  const double miss0 = CounterOf(&db_, "cache.plan.misses");
  MOOD_ASSERT_OK(db_.Query(sql).status());
  EXPECT_EQ(CounterOf(&db_, "cache.plan.invalidations"), inval0 + 1);
  EXPECT_EQ(CounterOf(&db_, "cache.plan.misses"), miss0 + 1);
}

TEST_F(PlanCacheFixture, WriteInvalidatesResultCacheBeforeNextRead) {
  MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Gauge TUPLE ( n Integer )").status());
  MOOD_ASSERT_OK(db_.Execute("NEW Gauge <1>").status());
  const std::string sql = "SELECT g.n FROM Gauge g";
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult before, db_.Query(sql));
  MOOD_ASSERT_OK(db_.Query(sql).status());  // now served from the result cache
  ASSERT_EQ(before.rows.size(), 1u);
  EXPECT_EQ(before.rows[0][0].AsInteger(), 1);

  // The update moves the extent's write epoch: both caches must refuse the
  // stamped entries before the next statement can observe stale data.
  MOOD_ASSERT_OK(db_.Execute("UPDATE Gauge g SET n = 2").status());
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult after, db_.Query(sql));
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0][0].AsInteger(), 2);
}

TEST_F(PlanCacheFixture, ExplainVerboseReportsCachedVsFresh) {
  const std::string sql = "SELECT e FROM VehicleEngine e WHERE e.cylinders > 4";
  ExplainOptions verbose;
  verbose.verbose = true;
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult fresh, db_.Explain(sql, verbose));
  EXPECT_NE(fresh.Render().find("plan: fresh"), std::string::npos);

  MOOD_ASSERT_OK(db_.Query(sql).status());
  MOOD_ASSERT_OK_AND_ASSIGN(ExplainResult cached, db_.Explain(sql, verbose));
  EXPECT_NE(cached.Render().find("plan: cached"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prepared-statement API surface
// ---------------------------------------------------------------------------

TEST_F(PlanCacheFixture, PreparedStatementArity) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      PreparedStatement ps,
      db_.Prepare("SELECT e FROM VehicleEngine e WHERE e.cylinders > ? AND e.size > ?"));
  EXPECT_EQ(ps.param_count(), 2u);
  EXPECT_TRUE(ps.valid());
  auto wrong = ps.Execute({MoodValue::Integer(4)});
  EXPECT_FALSE(wrong.ok());
  MOOD_ASSERT_OK(
      ps.Query({MoodValue::Integer(4), MoodValue::Integer(0)}).status());

  // Prepare is SELECT-only; other statements have no plan worth caching.
  EXPECT_FALSE(db_.Prepare("CREATE CLASS Nope TUPLE ( n Integer )").ok());
  // A default-constructed handle is empty, not a crash.
  PreparedStatement empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Execute().ok());
}

TEST(PlanCacheLifetimeTest, PreparedHandleOutlivingDatabaseIsInert) {
  TempDir dir;
  PreparedStatement ps;
  {
    Database db;
    MOOD_ASSERT_OK(db.Open(dir.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db));
    MOOD_ASSERT_OK_AND_ASSIGN(ps, db.Prepare("SELECT v FROM Vehicle v"));
    MOOD_ASSERT_OK(ps.Execute().status());
  }
  // The database is gone; the handle watches its liveness flag (TxnHandle
  // pattern) and must fail cleanly instead of dereferencing freed memory.
  EXPECT_TRUE(ps.valid());
  auto r = ps.Execute();
  EXPECT_FALSE(r.ok());
}

TEST_F(PlanCacheFixture, SetDefaultQueryOptionsInheritChain) {
  // Session default: caches off. Per-call unset fields inherit it.
  QueryOptions session;
  session.use_cache = false;
  db_.SetDefaultQueryOptions(session);
  EXPECT_FALSE(db_.Resolve({}).use_cache);
  const std::string sql = "SELECT c FROM Company c";
  const size_t size0 = db_.plan_cache()->size();
  MOOD_ASSERT_OK(db_.Query(sql).status());
  EXPECT_EQ(db_.plan_cache()->size(), size0);

  // A per-call field overrides the session default...
  QueryOptions call;
  call.use_cache = true;
  EXPECT_TRUE(db_.Resolve(call).use_cache);
  MOOD_ASSERT_OK(db_.Query(sql, call).status());
  EXPECT_EQ(db_.plan_cache()->size(), size0 + 1);

  // ...and clearing the session default restores the Open-time behavior.
  db_.SetDefaultQueryOptions(QueryOptions{});
  EXPECT_TRUE(db_.Resolve({}).use_cache);
  ResolvedQueryOptions r = db_.Resolve({});
  EXPECT_EQ(r.batch_size, ExecOptions::kInheritBatch);
  EXPECT_TRUE(r.compile_expressions);
}

// ---------------------------------------------------------------------------
// Staleness-never: randomized differential vs the uncached oracle
// ---------------------------------------------------------------------------

/// Interleaves queries and writes in a deterministic random order, diffing a
/// cache-enabled database against `use_cache = false` on the same database
/// after every step. Any stale plan or result surfaces as a rendering diff.
TEST_F(PlanCacheFixture, RandomizedDifferentialVsUncached) {
  OpenWith(/*plan_entries=*/4, /*result_bytes=*/256 * 1024);
  const std::vector<std::string> pool = {
      "SELECT v FROM Vehicle v WHERE v.weight > 3000",
      "SELECT e FROM VehicleEngine e WHERE e.cylinders > 4",
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2",
      "SELECT c FROM Company c WHERE c.name = 'BMW'",
      "SELECT v FROM Vehicle v WHERE v.company.name = 'BMW'",
      paperdb::kExample82Query,
  };
  QueryOptions oracle_opts;
  oracle_opts.use_cache = false;
  Lcg rng(7);
  for (int step = 0; step < 120; step++) {
    const uint64_t roll = rng.Next() % 10;
    if (roll < 2) {
      // Mutate an extent the cached plans touch.
      const int cap = 2000 + static_cast<int>(rng.Next() % 4000);
      MOOD_ASSERT_OK(db_.Execute(
          "UPDATE Vehicle v SET weight = " + std::to_string(cap) +
          " WHERE v.weight > " + std::to_string(cap)).status());
    } else if (roll == 2) {
      // DDL churn: epoch bump without touching the queried extents.
      MOOD_ASSERT_OK(db_.Execute("CREATE CLASS Churn" + std::to_string(step) +
                                 " TUPLE ( n Integer )").status());
    }
    const std::string& sql = pool[rng.Next() % pool.size()];
    MOOD_ASSERT_OK_AND_ASSIGN(QueryResult cached, db_.Query(sql));
    MOOD_ASSERT_OK_AND_ASSIGN(QueryResult oracle, db_.Query(sql, oracle_opts));
    ASSERT_EQ(cached.ToString(), oracle.ToString())
        << "stale cache at step " << step << " for: " << sql;
  }
  // The workload must actually have exercised the caches.
  EXPECT_GT(CounterOf(&db_, "cache.plan.hits"), 0);
  EXPECT_GT(CounterOf(&db_, "cache.result.hits"), 0);
}

// ---------------------------------------------------------------------------
// Concurrent writer racing cached readers
// ---------------------------------------------------------------------------

/// One writer advances a counter object 1,2,3,...; reader threads run the same
/// cached/prepared query in a loop. Staleness-never means each reader's
/// observed sequence is non-decreasing: a cached result older than something
/// the reader already saw would be a served-stale bug.
TEST(PlanCacheConcurrencyTest, WriterRacingCachedReaders) {
  for (size_t threads : TestThreadCounts()) {
    TempDir dir;
    Database db;
    DatabaseOptions opts;
    opts.exec_threads = 1;  // intra-query parallelism off; the race is inter-query
    MOOD_ASSERT_OK(db.Open(dir.Path("mood"), opts));
    MOOD_ASSERT_OK(db.Execute("CREATE CLASS Tick TUPLE ( n Integer )").status());
    MOOD_ASSERT_OK(db.Execute("NEW Tick <0>").status());

    constexpr int kWrites = 60;
    const size_t readers = threads > 1 ? threads - 1 : 1;
    std::atomic<int> stale{0};
    std::atomic<int> errors{0};
    std::atomic<bool> done{false};
    std::vector<std::thread> pool;
    for (size_t t = 0; t < readers; t++) {
      pool.emplace_back([&] {
        auto ps = db.Prepare("SELECT t.n FROM Tick t");
        if (!ps.ok()) {
          errors.fetch_add(1);
          return;
        }
        int last = 0;
        while (!done.load(std::memory_order_acquire)) {
          auto r = ps.value().Query();
          if (!r.ok() || r.value().rows.size() != 1) {
            errors.fetch_add(1);
            continue;
          }
          const int n = r.value().rows[0][0].AsInteger();
          if (n < last) stale.fetch_add(1);
          last = n;
        }
      });
    }
    for (int i = 1; i <= kWrites; i++) {
      auto w = db.Execute("UPDATE Tick t SET n = " + std::to_string(i));
      if (!w.ok()) errors.fetch_add(1);
    }
    done.store(true, std::memory_order_release);
    for (auto& th : pool) th.join();

    EXPECT_EQ(stale.load(), 0) << "a reader observed a stale cached result @"
                               << threads << " threads";
    EXPECT_EQ(errors.load(), 0) << "@" << threads << " threads";
    MOOD_ASSERT_OK(db.Close());
  }
}

}  // namespace
}  // namespace mood
