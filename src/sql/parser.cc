#include "sql/parser.h"

#include <cctype>

namespace mood {

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) pos_++;
  return t;
}

bool Parser::CheckKeyword(const std::string& kw) const {
  return Peek().type == TokenType::kKeyword && Peek().text == kw;
}

bool Parser::Match(TokenType t) {
  if (Check(t)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const std::string& kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const std::string& what) {
  if (Check(t)) {
    Advance();
    return Status::OK();
  }
  return Status::ParseError("expected " + what + " but found '" + Peek().text +
                            "' at offset " + std::to_string(Peek().position));
}

Status Parser::ExpectKeyword(const std::string& kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return Status::OK();
  }
  return Status::ParseError("expected " + kw + " but found '" + Peek().text +
                            "' at offset " + std::to_string(Peek().position));
}

Result<std::string> Parser::ExpectIdentifier(const std::string& what) {
  if (Check(TokenType::kIdentifier)) {
    return Advance().text;
  }
  return Status::ParseError("expected " + what + " but found '" + Peek().text +
                            "' at offset " + std::to_string(Peek().position));
}

Result<Statement> Parser::Parse(const std::string& sql) {
  MOOD_ASSIGN_OR_RETURN(auto tokens, Lexer::Tokenize(sql));
  Parser parser(std::move(tokens), &sql);
  MOOD_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEof)) {
    return Status::ParseError("trailing input after statement: '" +
                              parser.Peek().text + "'");
  }
  return stmt;
}

Result<std::vector<Statement>> Parser::ParseScript(const std::string& sql) {
  MOOD_ASSIGN_OR_RETURN(auto tokens, Lexer::Tokenize(sql));
  Parser parser(std::move(tokens), &sql);
  std::vector<Statement> out;
  while (!parser.Check(TokenType::kEof)) {
    MOOD_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
    while (parser.Match(TokenType::kSemicolon)) {
    }
  }
  return out;
}

Result<ExprPtr> Parser::ParseExpression(const std::string& text) {
  MOOD_ASSIGN_OR_RETURN(auto tokens, Lexer::Tokenize(text));
  Parser parser(std::move(tokens), &text);
  MOOD_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParseExpr());
  parser.Match(TokenType::kSemicolon);
  if (!parser.Check(TokenType::kEof)) {
    return Status::ParseError("trailing input after expression: '" +
                              parser.Peek().text + "'");
  }
  return expr;
}

Result<Statement> Parser::ParseStatement() {
  if (CheckKeyword("SELECT")) {
    MOOD_ASSIGN_OR_RETURN(SelectStmt s, ParseSelect());
    return Statement(std::move(s));
  }
  if (CheckKeyword("EXPLAIN")) {
    MOOD_ASSIGN_OR_RETURN(ExplainStmt s, ParseExplain());
    return Statement(std::move(s));
  }
  if (CheckKeyword("CREATE")) return ParseCreate();
  if (CheckKeyword("NEW")) {
    MOOD_ASSIGN_OR_RETURN(NewObjectStmt s, ParseNew());
    return Statement(std::move(s));
  }
  if (CheckKeyword("UPDATE")) {
    MOOD_ASSIGN_OR_RETURN(UpdateStmt s, ParseUpdate());
    return Statement(std::move(s));
  }
  if (CheckKeyword("DELETE")) {
    MOOD_ASSIGN_OR_RETURN(DeleteStmt s, ParseDelete());
    return Statement(std::move(s));
  }
  if (CheckKeyword("DROP")) return ParseDrop();
  if (CheckKeyword("ANALYZE")) {
    MOOD_ASSIGN_OR_RETURN(AnalyzeStmt s, ParseAnalyze());
    return Statement(std::move(s));
  }
  return Status::ParseError("unknown statement start: '" + Peek().text + "'");
}

Result<AnalyzeStmt> Parser::ParseAnalyze() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
  AnalyzeStmt stmt;
  if (Check(TokenType::kIdentifier)) {
    stmt.class_name = Advance().text;
  }
  return stmt;
}

Result<ExplainStmt> Parser::ParseExplain() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
  ExplainStmt stmt;
  if (MatchKeyword("ANALYZE")) stmt.analyze = true;
  if (MatchKeyword("VERBOSE")) stmt.verbose = true;
  MOOD_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  return stmt;
}

Result<SelectStmt> Parser::ParseSelect() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  SelectStmt stmt;
  if (MatchKeyword("DISTINCT")) stmt.distinct = true;
  // projection-list
  for (;;) {
    MOOD_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt.projection.push_back(std::move(e));
    if (!Match(TokenType::kComma)) break;
  }
  MOOD_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  for (;;) {
    MOOD_ASSIGN_OR_RETURN(FromEntry fe, ParseFromEntry());
    stmt.from.push_back(std::move(fe));
    if (!Match(TokenType::kComma)) break;
  }
  // Optional clauses in any order (the paper's grammar lists GROUP BY before
  // WHERE; conventional SQL order is also accepted).
  for (;;) {
    if (MatchKeyword("WHERE")) {
      if (stmt.where) return Status::ParseError("duplicate WHERE clause");
      MOOD_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
      continue;
    }
    if (CheckKeyword("GROUP")) {
      Advance();
      MOOD_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (!stmt.group_by.empty()) return Status::ParseError("duplicate GROUP BY");
      for (;;) {
        MOOD_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!Match(TokenType::kComma)) break;
      }
      if (MatchKeyword("HAVING")) {
        MOOD_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
      }
      continue;
    }
    if (CheckKeyword("ORDER")) {
      Advance();
      MOOD_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (!stmt.order_by.empty()) return Status::ParseError("duplicate ORDER BY");
      for (;;) {
        OrderKey key;
        MOOD_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          key.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
        if (!Match(TokenType::kComma)) break;
      }
      continue;
    }
    break;
  }
  return stmt;
}

Result<FromEntry> Parser::ParseFromEntry() {
  FromEntry fe;
  if (MatchKeyword("EVERY")) fe.every = true;
  MOOD_ASSIGN_OR_RETURN(fe.class_name, ExpectIdentifier("class name"));
  while (Match(TokenType::kMinus)) {
    MOOD_ASSIGN_OR_RETURN(std::string ex, ExpectIdentifier("excluded subclass"));
    fe.excludes.push_back(std::move(ex));
  }
  MOOD_ASSIGN_OR_RETURN(fe.var, ExpectIdentifier("range variable"));
  return fe;
}

Result<Statement> Parser::ParseCreate() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (CheckKeyword("CLASS") || CheckKeyword("TYPE")) {
    MOOD_ASSIGN_OR_RETURN(CreateClassStmt s, ParseCreateClass());
    return Statement(std::move(s));
  }
  if (CheckKeyword("MATERIALIZED")) {
    MOOD_ASSIGN_OR_RETURN(CreateMatViewStmt s, ParseCreateMatView());
    return Statement(std::move(s));
  }
  bool unique = MatchKeyword("UNIQUE");
  if (CheckKeyword("INDEX")) {
    MOOD_ASSIGN_OR_RETURN(CreateIndexStmt s, ParseCreateIndex(unique));
    return Statement(std::move(s));
  }
  return Status::ParseError(
      "expected CLASS, TYPE, INDEX or MATERIALIZED VIEW after CREATE");
}

Result<TypeDescPtr> Parser::ParseType() {
  if (Check(TokenType::kKeyword)) {
    std::string kw = Peek().text;
    if (kw == "INTEGER") {
      Advance();
      return TypeDesc::Basic(BasicType::kInteger);
    }
    if (kw == "FLOAT") {
      Advance();
      return TypeDesc::Basic(BasicType::kFloat);
    }
    if (kw == "LONGINTEGER") {
      Advance();
      return TypeDesc::Basic(BasicType::kLongInteger);
    }
    if (kw == "CHAR") {
      Advance();
      return TypeDesc::Basic(BasicType::kChar);
    }
    if (kw == "BOOLEAN") {
      Advance();
      return TypeDesc::Basic(BasicType::kBoolean);
    }
    if (kw == "STRING") {
      Advance();
      uint32_t cap = 0;
      if (Match(TokenType::kLParen)) {
        if (!Check(TokenType::kIntLiteral)) {
          return Status::ParseError("expected string capacity");
        }
        cap = static_cast<uint32_t>(Advance().int_value);
        MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      }
      return cap > 0 ? TypeDesc::SizedString(cap) : TypeDesc::Basic(BasicType::kString);
    }
    if (kw == "SET" || kw == "LIST") {
      Advance();
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      MOOD_ASSIGN_OR_RETURN(TypeDescPtr elem, ParseType());
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return kw == "SET" ? TypeDesc::Set(std::move(elem))
                         : TypeDesc::List(std::move(elem));
    }
    if (kw == "REFERENCE") {
      Advance();
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      MOOD_ASSIGN_OR_RETURN(std::string cls, ExpectIdentifier("class name"));
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return TypeDesc::Reference(std::move(cls));
    }
    if (kw == "TUPLE") {
      Advance();
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      std::vector<TypeDesc::Field> fields;
      if (!Check(TokenType::kRParen)) {
        for (;;) {
          TypeDesc::Field f;
          MOOD_ASSIGN_OR_RETURN(f.name, ExpectIdentifier("field name"));
          MOOD_ASSIGN_OR_RETURN(f.type, ParseType());
          fields.push_back(std::move(f));
          if (!Match(TokenType::kComma)) break;
        }
      }
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return TypeDesc::Tuple(std::move(fields));
    }
  }
  // A bare identifier denotes a reference to a user class (shorthand).
  if (Check(TokenType::kIdentifier)) {
    return TypeDesc::Reference(Advance().text);
  }
  return Status::ParseError("expected a type but found '" + Peek().text + "'");
}

Result<MoodsFunction> Parser::ParseMethodDecl() {
  MoodsFunction fn;
  MOOD_ASSIGN_OR_RETURN(fn.name, ExpectIdentifier("method name"));
  MOOD_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
  if (!Check(TokenType::kRParen)) {
    for (;;) {
      MoodsAttribute param;
      MOOD_ASSIGN_OR_RETURN(param.name, ExpectIdentifier("parameter name"));
      MOOD_ASSIGN_OR_RETURN(param.type, ParseType());
      fn.params.push_back(std::move(param));
      if (!Match(TokenType::kComma)) break;
    }
  }
  MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  MOOD_ASSIGN_OR_RETURN(fn.return_type, ParseType());
  return fn;
}

Result<CreateClassStmt> Parser::ParseCreateClass() {
  CreateClassStmt stmt;
  if (MatchKeyword("TYPE")) {
    stmt.def.is_class = false;
  } else {
    MOOD_RETURN_IF_ERROR(ExpectKeyword("CLASS"));
    stmt.def.is_class = true;
  }
  MOOD_ASSIGN_OR_RETURN(stmt.def.name, ExpectIdentifier("class name"));
  if (MatchKeyword("INHERITS")) {
    MOOD_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    for (;;) {
      MOOD_ASSIGN_OR_RETURN(std::string super, ExpectIdentifier("superclass"));
      stmt.def.supers.push_back(std::move(super));
      if (!Match(TokenType::kComma)) break;
    }
  }
  if (MatchKeyword("TUPLE")) {
    MOOD_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (!Check(TokenType::kRParen)) {
      for (;;) {
        MoodsAttribute attr;
        MOOD_ASSIGN_OR_RETURN(attr.name, ExpectIdentifier("attribute name"));
        MOOD_ASSIGN_OR_RETURN(attr.type, ParseType());
        stmt.def.attributes.push_back(std::move(attr));
        // The paper's DDL examples end attribute lists with a trailing comma.
        if (!Match(TokenType::kComma)) break;
        if (Check(TokenType::kRParen)) break;
      }
    }
    MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  }
  if (MatchKeyword("METHODS")) {
    Match(TokenType::kColon);
    for (;;) {
      MOOD_ASSIGN_OR_RETURN(MoodsFunction fn, ParseMethodDecl());
      stmt.def.methods.push_back(std::move(fn));
      if (!Match(TokenType::kComma)) break;
      // trailing comma before end of statement
      if (Check(TokenType::kEof) || Check(TokenType::kSemicolon) ||
          CheckKeyword("CREATE")) {
        break;
      }
    }
  }
  return stmt;
}

Result<CreateIndexStmt> Parser::ParseCreateIndex(bool unique) {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
  CreateIndexStmt stmt;
  stmt.unique = unique;
  MOOD_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdentifier("index name"));
  MOOD_RETURN_IF_ERROR(ExpectKeyword("ON"));
  MOOD_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdentifier("class name"));
  MOOD_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
  MOOD_ASSIGN_OR_RETURN(stmt.attribute, ExpectIdentifier("attribute"));
  while (Match(TokenType::kDot)) {
    MOOD_ASSIGN_OR_RETURN(std::string step, ExpectIdentifier("path step"));
    stmt.attribute += "." + step;
  }
  MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  if (MatchKeyword("USING")) {
    if (MatchKeyword("BTREE")) {
      stmt.kind = IndexKind::kBTree;
    } else if (MatchKeyword("HASH")) {
      stmt.kind = IndexKind::kHash;
    } else if (MatchKeyword("PATH")) {
      stmt.kind = IndexKind::kPath;
    } else if (MatchKeyword("JOININDEX")) {
      stmt.kind = IndexKind::kBinaryJoin;
    } else if (MatchKeyword("RTREE")) {
      stmt.kind = IndexKind::kRTree;
    } else {
      return Status::ParseError("unknown index method '" + Peek().text + "'");
    }
  } else if (stmt.attribute.find('.') != std::string::npos) {
    stmt.kind = IndexKind::kPath;
  }
  return stmt;
}

Result<NewObjectStmt> Parser::ParseNew() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("NEW"));
  NewObjectStmt stmt;
  MOOD_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdentifier("class name"));
  MOOD_RETURN_IF_ERROR(Expect(TokenType::kLAngle, "'<'"));
  if (!Check(TokenType::kRAngle)) {
    for (;;) {
      // Additive level only: the closing '>' must not parse as a comparison.
      MOOD_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      stmt.values.push_back(std::move(e));
      if (!Match(TokenType::kComma)) break;
    }
  }
  MOOD_RETURN_IF_ERROR(Expect(TokenType::kRAngle, "'>'"));
  if (MatchKeyword("AS")) {
    MOOD_ASSIGN_OR_RETURN(stmt.bind_name, ExpectIdentifier("object name"));
  }
  return stmt;
}

Result<UpdateStmt> Parser::ParseUpdate() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  UpdateStmt stmt;
  MOOD_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdentifier("class name"));
  MOOD_ASSIGN_OR_RETURN(stmt.var, ExpectIdentifier("range variable"));
  MOOD_RETURN_IF_ERROR(ExpectKeyword("SET"));
  for (;;) {
    std::string attr;
    MOOD_ASSIGN_OR_RETURN(attr, ExpectIdentifier("attribute"));
    MOOD_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    MOOD_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt.assignments.emplace_back(std::move(attr), std::move(e));
    if (!Match(TokenType::kComma)) break;
  }
  if (MatchKeyword("WHERE")) {
    MOOD_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<DeleteStmt> Parser::ParseDelete() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  MOOD_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  DeleteStmt stmt;
  MOOD_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdentifier("class name"));
  MOOD_ASSIGN_OR_RETURN(stmt.var, ExpectIdentifier("range variable"));
  if (MatchKeyword("WHERE")) {
    MOOD_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseDrop() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  if (MatchKeyword("MATERIALIZED")) {
    MOOD_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
    DropMatViewStmt stmt;
    MOOD_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("view name"));
    return Statement(std::move(stmt));
  }
  if (!MatchKeyword("CLASS")) MOOD_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
  DropClassStmt stmt;
  MOOD_ASSIGN_OR_RETURN(stmt.class_name, ExpectIdentifier("class name"));
  return Statement(std::move(stmt));
}

Result<CreateMatViewStmt> Parser::ParseCreateMatView() {
  MOOD_RETURN_IF_ERROR(ExpectKeyword("MATERIALIZED"));
  MOOD_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
  CreateMatViewStmt stmt;
  MOOD_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("view name"));
  MOOD_RETURN_IF_ERROR(ExpectKeyword("AS"));
  const size_t select_begin = Peek().position;
  MOOD_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
  if (source_ != nullptr) {
    // The SELECT text runs from its first token to the token that terminated it
    // (';' or EOF — EOF carries position == source length).
    const size_t select_end = Peek().position;
    stmt.select_sql = source_->substr(select_begin, select_end - select_begin);
    while (!stmt.select_sql.empty() &&
           std::isspace(static_cast<unsigned char>(stmt.select_sql.back()))) {
      stmt.select_sql.pop_back();
    }
  }
  return stmt;
}

// --- Expressions -------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  MOOD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    MOOD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  MOOD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    MOOD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    MOOD_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Expr::Unary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  MOOD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  if (MatchKeyword("BETWEEN")) {
    // x BETWEEN a AND b  =>  x >= a AND x <= b
    MOOD_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    MOOD_RETURN_IF_ERROR(ExpectKeyword("AND"));
    MOOD_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr ge = Expr::Binary(BinaryOp::kGe, lhs, std::move(lo));
    ExprPtr le = Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(hi));
    return Expr::Binary(BinaryOp::kAnd, std::move(ge), std::move(le));
  }
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    case TokenType::kLAngle: op = BinaryOp::kLt; break;
    case TokenType::kRAngle: op = BinaryOp::kGt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    default: return lhs;
  }
  Advance();
  MOOD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return Expr::Binary(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseAdditive() {
  MOOD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Check(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    Advance();
    MOOD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  MOOD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Check(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Check(TokenType::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      return lhs;
    }
    Advance();
    MOOD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    MOOD_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Expr::Unary(UnaryOp::kNeg, std::move(operand));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      int64_t v = Advance().int_value;
      if (v >= INT32_MIN && v <= INT32_MAX) {
        return Expr::Literal(MoodValue::Integer(static_cast<int32_t>(v)));
      }
      return Expr::Literal(MoodValue::LongInteger(v));
    }
    case TokenType::kFloatLiteral:
      return Expr::Literal(MoodValue::Float(Advance().float_value));
    case TokenType::kStringLiteral:
      return Expr::Literal(MoodValue::String(Advance().text));
    case TokenType::kQuestion:
      Advance();
      return Expr::Parameter(param_counter_++);
    case TokenType::kLParen: {
      Advance();
      MOOD_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kKeyword: {
      if (t.text == "TRUE") {
        Advance();
        return Expr::Literal(MoodValue::Boolean(true));
      }
      if (t.text == "FALSE") {
        Advance();
        return Expr::Literal(MoodValue::Boolean(false));
      }
      if (t.text == "NULL") {
        Advance();
        return Expr::Literal(MoodValue::Null());
      }
      return Status::ParseError("unexpected keyword '" + t.text + "' in expression");
    }
    case TokenType::kIdentifier: {
      std::string first = Advance().text;
      return ParsePathFrom(std::move(first));
    }
    default:
      return Status::ParseError("unexpected token '" + t.text + "' in expression");
  }
}

Result<ExprPtr> Parser::ParsePathFrom(std::string first) {
  std::vector<PathStep> steps;
  while (Match(TokenType::kDot)) {
    PathStep step;
    if (CheckKeyword("SELF")) {
      // not a reserved keyword in our lexer; kept for clarity
    }
    MOOD_ASSIGN_OR_RETURN(step.name, ExpectIdentifier("path step"));
    if (Match(TokenType::kLParen)) {
      step.is_call = true;
      if (!Check(TokenType::kRParen)) {
        for (;;) {
          MOOD_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          step.args.push_back(std::move(arg));
          if (!Match(TokenType::kComma)) break;
        }
      }
      MOOD_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    steps.push_back(std::move(step));
  }
  return Expr::Path(std::move(first), std::move(steps));
}

}  // namespace mood
