#include "algebra/collection.h"

#include <algorithm>

namespace mood {

std::string_view CollKindName(CollKind k) {
  switch (k) {
    case CollKind::kExtent: return "Extent";
    case CollKind::kSet: return "Set";
    case CollKind::kList: return "List";
    case CollKind::kNamedObject: return "Named Obj.";
  }
  return "?";
}

Collection Collection::Extent(std::string class_name, std::vector<Oid> oids) {
  Collection c;
  c.kind_ = CollKind::kExtent;
  c.class_name_ = std::move(class_name);
  c.oids_ = std::move(oids);
  return c;
}

Collection Collection::ValueExtent(std::vector<MoodValue> values) {
  Collection c;
  c.kind_ = CollKind::kExtent;
  c.materialized_ = true;
  c.values_ = std::move(values);
  return c;
}

Collection Collection::Set(std::vector<Oid> oids) {
  Collection c;
  c.kind_ = CollKind::kSet;
  std::vector<Oid> dedup;
  for (Oid o : oids) {
    if (std::find(dedup.begin(), dedup.end(), o) == dedup.end()) dedup.push_back(o);
  }
  c.oids_ = std::move(dedup);
  return c;
}

Collection Collection::List(std::vector<Oid> oids) {
  Collection c;
  c.kind_ = CollKind::kList;
  c.oids_ = std::move(oids);
  return c;
}

Collection Collection::NamedObject(std::string name, Oid oid) {
  Collection c;
  c.kind_ = CollKind::kNamedObject;
  c.object_name_ = std::move(name);
  c.oids_ = {oid};
  return c;
}

Collection Collection::Pairs(CollKind kind, std::vector<MoodValue> pair_values) {
  Collection c;
  c.kind_ = kind;
  c.materialized_ = true;
  c.values_ = std::move(pair_values);
  return c;
}

std::string Collection::ToString() const {
  std::string out(CollKindName(kind_));
  if (!class_name_.empty()) out += "<" + class_name_ + ">";
  if (!object_name_.empty()) out += "'" + object_name_ + "'";
  out += "(" + std::to_string(size()) + ")";
  return out;
}

}  // namespace mood
