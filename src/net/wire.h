#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "types/value.h"

namespace mood {
namespace net {

/// MOOD wire protocol (DESIGN.md §14): length-prefixed binary frames over a
/// byte stream. Every frame is
///
///     [u32 payload_len][u8 type][payload_len bytes]
///
/// little-endian, matching the storage codecs in common/coding.h. The client
/// speaks a strict request/response discipline per frame, but may pipeline:
/// the server answers queued frames in order on the same connection.
enum class FrameType : uint8_t {
  // client -> server
  kHello = 1,          ///< u32 protocol_version
  kExecute = 2,        ///< u32 deadline_ms, u32 chunk_rows, str sql
  kPrepare = 3,        ///< str sql
  kBindExecute = 4,    ///< u32 stmt_id, u32 deadline_ms, u32 chunk_rows,
                       ///< u16 nparams, nparams encoded MoodValues
  kFetch = 5,          ///< u32 cursor_id, u32 max_rows
  kClosePrepared = 6,  ///< u32 stmt_id
  kSetOption = 7,      ///< str name, u64 value (two's-complement i64)
  kBegin = 8,          ///< empty
  kCommit = 9,         ///< empty
  kAbort = 10,         ///< empty
  kBeginSnapshot = 11, ///< empty
  kEndSnapshot = 12,   ///< empty

  // server -> client
  kHelloOk = 64,    ///< u32 protocol_version, u64 session_id
  kOk = 65,         ///< empty generic ack (txn control, options, close)
  kExecOk = 66,     ///< u8 kind, u64 affected, u64 schema_epoch,
                    ///< u8 has_oid, u64 packed_oid, str message
  kResultSet = 67,  ///< u16 ncols, ncols str names, u64 total_rows,
                    ///< u32 cursor_id (0 = complete), u32 nrows, rows
  kRows = 68,       ///< u32 cursor_id (0 = exhausted), u32 nrows, rows
  kPrepared = 69,   ///< u32 stmt_id, u32 param_count
  kError = 70,      ///< u32 status_code, str message
};

constexpr uint32_t kProtocolVersion = 1;
/// Frame-size ceiling both sides enforce before trusting a length prefix.
constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Appends one whole frame (header + payload) to `out`.
void AppendFrame(std::string* out, FrameType type, const Slice& payload);

/// Extracts one frame from the front of `buf` if a complete one is buffered.
/// Returns true and erases the consumed bytes on success; false with OK status
/// when more bytes are needed; false with an error when the stream is corrupt
/// (length prefix exceeds `max_frame_bytes`).
bool ExtractFrame(std::string* buf, Frame* out, size_t max_frame_bytes, Status* error);

// --- Payload cursor helpers (Slice-consuming, MoodValue::Decode style) -------

Status GetU8(Slice* in, uint8_t* v);
Status GetU16(Slice* in, uint16_t* v);
Status GetU32(Slice* in, uint32_t* v);
Status GetU64(Slice* in, uint64_t* v);
Status GetStr(Slice* in, std::string* v);

/// Row codec shared by kResultSet/kRows: each row is ncols back-to-back
/// MoodValue encodings (the count lives in the frame header fields).
void AppendRow(std::string* dst, const std::vector<MoodValue>& row);
Status DecodeRow(Slice* in, uint16_t ncols, std::vector<MoodValue>* out);

/// Builds a typed error frame from a Status: the numeric code round-trips
/// through Status::FromCode on the client (satellite: stable wire codes).
void AppendErrorFrame(std::string* out, const Status& status);

}  // namespace net
}  // namespace mood
