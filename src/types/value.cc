#include "types/value.h"

#include <algorithm>
#include <cmath>

#include "common/coding.h"
#include "common/hash.h"

namespace mood {

std::string_view BasicTypeName(BasicType t) {
  switch (t) {
    case BasicType::kInteger: return "Integer";
    case BasicType::kFloat: return "Float";
    case BasicType::kLongInteger: return "LongInteger";
    case BasicType::kString: return "String";
    case BasicType::kChar: return "Char";
    case BasicType::kBoolean: return "Boolean";
  }
  return "?";
}

std::string_view ValueKindName(ValueKind k) {
  switch (k) {
    case ValueKind::kNull: return "Null";
    case ValueKind::kInteger: return "Integer";
    case ValueKind::kFloat: return "Float";
    case ValueKind::kLongInteger: return "LongInteger";
    case ValueKind::kString: return "String";
    case ValueKind::kChar: return "Char";
    case ValueKind::kBoolean: return "Boolean";
    case ValueKind::kTuple: return "Tuple";
    case ValueKind::kSet: return "Set";
    case ValueKind::kList: return "List";
    case ValueKind::kReference: return "Reference";
  }
  return "?";
}

MoodValue MoodValue::Integer(int32_t v) {
  MoodValue m;
  m.kind_ = ValueKind::kInteger;
  m.scalar_ = v;
  return m;
}
MoodValue MoodValue::Float(double v) {
  MoodValue m;
  m.kind_ = ValueKind::kFloat;
  m.scalar_ = v;
  return m;
}
MoodValue MoodValue::LongInteger(int64_t v) {
  MoodValue m;
  m.kind_ = ValueKind::kLongInteger;
  m.scalar_ = v;
  return m;
}
MoodValue MoodValue::String(std::string v) {
  MoodValue m;
  m.kind_ = ValueKind::kString;
  m.scalar_ = std::make_shared<std::string>(std::move(v));
  return m;
}
MoodValue MoodValue::Char(char v) {
  MoodValue m;
  m.kind_ = ValueKind::kChar;
  m.scalar_ = v;
  return m;
}
MoodValue MoodValue::Boolean(bool v) {
  MoodValue m;
  m.kind_ = ValueKind::kBoolean;
  m.scalar_ = v;
  return m;
}
MoodValue MoodValue::Tuple(ValueList fields) {
  MoodValue m;
  m.kind_ = ValueKind::kTuple;
  m.children_ = std::make_shared<ValueList>(std::move(fields));
  return m;
}
MoodValue MoodValue::Set(ValueList elems) {
  MoodValue m;
  m.kind_ = ValueKind::kSet;
  ValueList dedup;
  for (auto& e : elems) {
    bool found = false;
    for (const auto& d : dedup) {
      if (d.Equals(e)) {
        found = true;
        break;
      }
    }
    if (!found) dedup.push_back(std::move(e));
  }
  m.children_ = std::make_shared<ValueList>(std::move(dedup));
  return m;
}
MoodValue MoodValue::List(ValueList elems) {
  MoodValue m;
  m.kind_ = ValueKind::kList;
  m.children_ = std::make_shared<ValueList>(std::move(elems));
  return m;
}
MoodValue MoodValue::Reference(Oid oid) {
  MoodValue m;
  m.kind_ = ValueKind::kReference;
  m.scalar_ = oid;
  return m;
}

Result<double> MoodValue::ToDouble() const {
  switch (kind_) {
    case ValueKind::kInteger: return static_cast<double>(AsInteger());
    case ValueKind::kLongInteger: return static_cast<double>(AsLongInteger());
    case ValueKind::kFloat: return AsFloat();
    case ValueKind::kChar: return static_cast<double>(AsChar());
    case ValueKind::kBoolean: return AsBoolean() ? 1.0 : 0.0;
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               std::string(ValueKindName(kind_)) + " to Float");
  }
}

Result<int64_t> MoodValue::ToInt64() const {
  switch (kind_) {
    case ValueKind::kInteger: return static_cast<int64_t>(AsInteger());
    case ValueKind::kLongInteger: return AsLongInteger();
    case ValueKind::kChar: return static_cast<int64_t>(AsChar());
    case ValueKind::kBoolean: return AsBoolean() ? int64_t{1} : int64_t{0};
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               std::string(ValueKindName(kind_)) + " to LongInteger");
  }
}

Result<const MoodValue*> MoodValue::Field(size_t idx) const {
  if (kind_ != ValueKind::kTuple) return Status::TypeError("Field() on non-tuple value");
  if (!children_ || idx >= children_->size()) {
    return Status::InvalidArgument("tuple field index out of range");
  }
  return &(*children_)[idx];
}

bool MoodValue::Equals(const MoodValue& other) const {
  if (kind_ != other.kind_) {
    // Numeric cross-kind equality (2 == 2.0) to match the interpreter semantics.
    if (IsNumeric() && other.IsNumeric()) {
      auto a = ToDouble();
      auto b = other.ToDouble();
      return a.ok() && b.ok() && a.value() == b.value();
    }
    return false;
  }
  switch (kind_) {
    case ValueKind::kNull: return true;
    case ValueKind::kInteger: return AsInteger() == other.AsInteger();
    case ValueKind::kFloat: return AsFloat() == other.AsFloat();
    case ValueKind::kLongInteger: return AsLongInteger() == other.AsLongInteger();
    case ValueKind::kString: return AsString() == other.AsString();
    case ValueKind::kChar: return AsChar() == other.AsChar();
    case ValueKind::kBoolean: return AsBoolean() == other.AsBoolean();
    case ValueKind::kReference: return AsReference() == other.AsReference();
    case ValueKind::kTuple:
    case ValueKind::kList: {
      if (size() != other.size()) return false;
      for (size_t i = 0; i < size(); i++) {
        if (!(*children_)[i].Equals((*other.children_)[i])) return false;
      }
      return true;
    }
    case ValueKind::kSet: {
      if (size() != other.size()) return false;
      for (const auto& e : *children_) {
        bool found = false;
        for (const auto& f : *other.children_) {
          if (e.Equals(f)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
  }
  return false;
}

Result<int> MoodValue::Compare(const MoodValue& other) const {
  if (IsNumeric() && other.IsNumeric()) {
    MOOD_ASSIGN_OR_RETURN(double a, ToDouble());
    MOOD_ASSIGN_OR_RETURN(double b, other.ToDouble());
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (kind_ != other.kind_) {
    return Status::TypeError(std::string("cannot compare ") +
                             std::string(ValueKindName(kind_)) + " with " +
                             std::string(ValueKindName(other.kind_)));
  }
  switch (kind_) {
    case ValueKind::kNull: return 0;
    case ValueKind::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kChar:
      return AsChar() < other.AsChar() ? -1 : (AsChar() > other.AsChar() ? 1 : 0);
    case ValueKind::kBoolean:
      return AsBoolean() == other.AsBoolean() ? 0 : (AsBoolean() ? 1 : -1);
    case ValueKind::kReference: {
      uint64_t a = AsReference().Pack(), b = other.AsReference().Pack();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueKind::kTuple:
    case ValueKind::kList:
    case ValueKind::kSet: {
      size_t n = std::min(size(), other.size());
      for (size_t i = 0; i < n; i++) {
        MOOD_ASSIGN_OR_RETURN(int c, (*children_)[i].Compare((*other.children_)[i]));
        if (c != 0) return c;
      }
      return size() < other.size() ? -1 : (size() > other.size() ? 1 : 0);
    }
    default:
      return Status::TypeError("incomparable values");
  }
}

uint64_t MoodValue::Hash() const {
  // Numerics hash via their double widening so that Hash is consistent with
  // Equals' cross-kind numeric equality.
  switch (kind_) {
    case ValueKind::kNull: return 0x9e3779b9;
    case ValueKind::kInteger:
    case ValueKind::kFloat:
    case ValueKind::kLongInteger: {
      double d = ToDouble().value();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return Hash64(&d, sizeof(d), 17);
    }
    case ValueKind::kString: return Hash64(AsString().data(), AsString().size(), 23);
    case ValueKind::kChar: {
      char c = AsChar();
      return Hash64(&c, 1, 29);
    }
    case ValueKind::kBoolean: return AsBoolean() ? 31 : 37;
    case ValueKind::kReference: {
      uint64_t p = AsReference().Pack();
      return Hash64(&p, sizeof(p), 41);
    }
    case ValueKind::kTuple:
    case ValueKind::kList: {
      uint64_t h = 43;
      for (const auto& e : *children_) h = h * 1000003 + e.Hash();
      return h;
    }
    case ValueKind::kSet: {
      uint64_t h = 47;  // order-independent combine
      for (const auto& e : *children_) h += e.Hash();
      return h;
    }
  }
  return 0;
}

void MoodValue::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(kind_));
  switch (kind_) {
    case ValueKind::kNull: break;
    case ValueKind::kInteger: PutFixed32(dst, static_cast<uint32_t>(AsInteger())); break;
    case ValueKind::kFloat: PutDouble(dst, AsFloat()); break;
    case ValueKind::kLongInteger: PutFixed64(dst, static_cast<uint64_t>(AsLongInteger())); break;
    case ValueKind::kString: PutLengthPrefixedSlice(dst, AsString()); break;
    case ValueKind::kChar: dst->push_back(AsChar()); break;
    case ValueKind::kBoolean: dst->push_back(AsBoolean() ? 1 : 0); break;
    case ValueKind::kReference: PutFixed64(dst, AsReference().Pack()); break;
    case ValueKind::kTuple:
    case ValueKind::kSet:
    case ValueKind::kList: {
      PutFixed32(dst, static_cast<uint32_t>(size()));
      for (const auto& e : *children_) e.EncodeTo(dst);
      break;
    }
  }
}

Result<MoodValue> MoodValue::Decode(Slice* input) {
  if (input->empty()) return Status::Corruption("empty value encoding");
  auto kind = static_cast<ValueKind>((*input)[0]);
  input->remove_prefix(1);
  Decoder dec(*input);
  auto consume = [&](size_t before_remaining) {
    input->remove_prefix(before_remaining - dec.Remaining());
  };
  size_t start = dec.Remaining();
  switch (kind) {
    case ValueKind::kNull: return MoodValue::Null();
    case ValueKind::kInteger: {
      uint32_t v = 0;
      MOOD_RETURN_IF_ERROR(dec.GetFixed32(&v));
      consume(start);
      return MoodValue::Integer(static_cast<int32_t>(v));
    }
    case ValueKind::kFloat: {
      double v = 0;
      MOOD_RETURN_IF_ERROR(dec.GetDouble(&v));
      consume(start);
      return MoodValue::Float(v);
    }
    case ValueKind::kLongInteger: {
      uint64_t v = 0;
      MOOD_RETURN_IF_ERROR(dec.GetFixed64(&v));
      consume(start);
      return MoodValue::LongInteger(static_cast<int64_t>(v));
    }
    case ValueKind::kString: {
      std::string s;
      MOOD_RETURN_IF_ERROR(dec.GetString(&s));
      consume(start);
      return MoodValue::String(std::move(s));
    }
    case ValueKind::kChar: {
      if (input->empty()) return Status::Corruption("truncated char");
      char c = (*input)[0];
      input->remove_prefix(1);
      return MoodValue::Char(c);
    }
    case ValueKind::kBoolean: {
      if (input->empty()) return Status::Corruption("truncated bool");
      bool b = (*input)[0] != 0;
      input->remove_prefix(1);
      return MoodValue::Boolean(b);
    }
    case ValueKind::kReference: {
      uint64_t v = 0;
      MOOD_RETURN_IF_ERROR(dec.GetFixed64(&v));
      consume(start);
      return MoodValue::Reference(Oid::Unpack(v));
    }
    case ValueKind::kTuple:
    case ValueKind::kSet:
    case ValueKind::kList: {
      uint32_t n = 0;
      MOOD_RETURN_IF_ERROR(dec.GetFixed32(&n));
      consume(start);
      ValueList elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        MOOD_ASSIGN_OR_RETURN(MoodValue v, Decode(input));
        elems.push_back(std::move(v));
      }
      if (kind == ValueKind::kTuple) return MoodValue::Tuple(std::move(elems));
      if (kind == ValueKind::kList) return MoodValue::List(std::move(elems));
      // Sets were deduplicated at encode time; rebuild preserving that.
      MoodValue m;
      m.kind_ = ValueKind::kSet;
      m.children_ = std::make_shared<ValueList>(std::move(elems));
      return m;
    }
  }
  return Status::Corruption("unknown value kind tag");
}

Result<MoodValue> MoodValue::DecodeAll(Slice input) {
  MOOD_ASSIGN_OR_RETURN(MoodValue v, Decode(&input));
  if (!input.empty()) return Status::Corruption("trailing bytes after value");
  return v;
}

std::string MoodValue::ToString() const {
  switch (kind_) {
    case ValueKind::kNull: return "null";
    case ValueKind::kInteger: return std::to_string(AsInteger());
    case ValueKind::kFloat: {
      std::string s = std::to_string(AsFloat());
      return s;
    }
    case ValueKind::kLongInteger: return std::to_string(AsLongInteger()) + "L";
    case ValueKind::kString: return "'" + AsString() + "'";
    case ValueKind::kChar: return std::string("'") + AsChar() + "'";
    case ValueKind::kBoolean: return AsBoolean() ? "true" : "false";
    case ValueKind::kReference: return AsReference().ToString();
    case ValueKind::kTuple:
    case ValueKind::kSet:
    case ValueKind::kList: {
      const char* open = kind_ == ValueKind::kTuple ? "<" : (kind_ == ValueKind::kSet ? "{" : "[");
      const char* close = kind_ == ValueKind::kTuple ? ">" : (kind_ == ValueKind::kSet ? "}" : "]");
      std::string out(open);
      for (size_t i = 0; i < size(); i++) {
        if (i > 0) out += ", ";
        out += (*children_)[i].ToString();
      }
      out += close;
      return out;
    }
  }
  return "?";
}

}  // namespace mood
