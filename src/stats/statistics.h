#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/status.h"
#include "objects/object_manager.h"

namespace mood {

/// Per-class statistics (paper Table 8, class-level rows).
struct ClassStats {
  uint64_t cardinality = 0;  ///< |C|
  uint32_t nbpages = 0;      ///< nbpages(C)
  uint32_t size = 0;         ///< size(C), bytes per instance
};

/// Per-atomic-attribute statistics (Table 8): notnull, dist, max, min.
/// max/min are kept as doubles (numeric attributes); for strings only dist and
/// notnull are meaningful.
struct AttributeStats {
  double notnull = 1.0;
  uint64_t dist = 0;
  double max_val = 0;
  double min_val = 0;
  bool has_range = false;  ///< max/min meaningful (numeric attribute)
};

/// Per-reference-attribute statistics for A: C -> D (Table 8): fan, totref.
/// totlinks and hitprb are derived:
///   totlinks(A,C,D) = fan(A,C,D) * |C|
///   hitprb(A,C,D)   = totref(A,C,D) / |D|
struct ReferenceStats {
  std::string target_class;  ///< D
  double fan = 1.0;          ///< fan(A,C,D)
  uint64_t totref = 0;       ///< totref(A,C,D)
};

/// Holds and computes the cost-model parameters of Section 4. Statistics can be
/// *collected* by scanning extents (measured mode) or *injected* directly
/// (modeled mode — how bench_example81 reproduces the paper's Tables 13–15
/// without materializing 260k objects).
class StatisticsManager {
 public:
  explicit StatisticsManager(ObjectManager* objects) : objects_(objects) {}

  /// Scans the class extent and recomputes class, attribute and reference stats.
  Status Collect(const std::string& class_name);

  // Injection (modeled mode).
  void SetClassStats(const std::string& cls, ClassStats s) { classes_[cls] = s; }
  void SetAttributeStats(const std::string& cls, const std::string& attr,
                         AttributeStats s) {
    attributes_[{cls, attr}] = s;
  }
  void SetReferenceStats(const std::string& cls, const std::string& attr,
                         ReferenceStats s) {
    references_[{cls, attr}] = s;
  }

  Result<ClassStats> Class(const std::string& cls) const;
  Result<AttributeStats> Attribute(const std::string& cls,
                                   const std::string& attr) const;
  Result<ReferenceStats> Reference(const std::string& cls,
                                   const std::string& attr) const;

  /// Derived parameters.
  Result<double> TotLinks(const std::string& cls, const std::string& attr) const;
  Result<double> HitPrb(const std::string& cls, const std::string& attr) const;

  bool HasClass(const std::string& cls) const { return classes_.count(cls) > 0; }

  /// All classes with stats (for the Table 13–15 printers).
  std::vector<std::string> Classes() const;
  std::vector<std::pair<std::string, std::string>> ReferenceAttributes() const;
  std::vector<std::pair<std::string, std::string>> AtomicAttributes() const;

 private:
  ObjectManager* objects_;
  std::map<std::string, ClassStats> classes_;
  std::map<std::pair<std::string, std::string>, AttributeStats> attributes_;
  std::map<std::pair<std::string, std::string>, ReferenceStats> references_;
};

}  // namespace mood
