#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace mood {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

constexpr uint32_t kConnEvents = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;

}  // namespace

uint64_t MoodServer::NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

MoodServer::~MoodServer() { Stop(); }

Status MoodServer::Start(Database* db, const ServerOptions& options) {
  if (running()) return Status::InvalidArgument("server already running");
  if (db == nullptr || !db->is_open()) {
    return Status::InvalidArgument("server requires an open database");
  }
  if (db->txn_manager() == nullptr) {
    return Status::NotSupported("server requires enable_wal (sessions expose transactions)");
  }
  db_ = db;
  options_ = options;
  if (options_.worker_threads == 0) options_.worker_threads = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status st = Errno("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status st = Errno("epoll_create1/eventfd");
    Stop();
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  MetricsRegistry* m = db_->metrics();
  if (m != nullptr) {
    connections_ = m->Counter("net.connections");
    disconnects_ = m->Counter("net.disconnects");
    active_ = m->Gauge("net.active_connections");
    frames_ = m->Counter("net.frames");
    errors_ = m->Counter("net.errors");
    timeouts_ = m->Counter("net.timeouts");
    reaped_ = m->Counter("net.sessions_reaped");
    request_us_ = m->Histogram("net.request_us");
  }

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  for (size_t i = 0; i < options_.worker_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void MoodServer::Stop() {
  if (running_.exchange(false)) {
    uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
    queue_cv_.notify_all();
    if (io_thread_.joinable()) io_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    // Closing the connections destroys their sessions: open transactions
    // abort, pinned snapshots unpin, locks release.
    std::map<int, std::shared_ptr<Conn>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns.swap(conns_);
    }
    for (auto& [fd, conn] : conns) {
      ::close(conn->fd);
      if (active_ != nullptr) active_->Sub(1);
    }
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

void MoodServer::CloseConn(const std::shared_ptr<Conn>& conn, bool reaped_idle) {
  if (conn->dead.exchange(true)) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->fd);
  }
  if (disconnects_ != nullptr) disconnects_->Add(1);
  if (active_ != nullptr) active_->Sub(1);
  if (reaped_idle && reaped_ != nullptr) reaped_->Add(1);
  // The session itself dies with the last shared_ptr to the Conn (possibly
  // right here): ~TxnHandle aborts the open transaction, ~Session releases
  // the pinned snapshot — a killed client never wedges the database.
}

void MoodServer::IoLoop() {
  std::vector<epoll_event> events(64);
  while (running()) {
    int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; i++) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        while (true) {
          int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          auto conn = std::make_shared<Conn>();
          conn->fd = cfd;
          conn->id = next_conn_id_++;
          conn->session = db_->CreateSession();
          conn->deadline_ms = options_.default_deadline_ms;
          conn->chunk_rows = options_.default_chunk_rows;
          conn->last_active_ms.store(NowMs(), std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lock(conns_mu_);
            conns_[cfd] = conn;
          }
          epoll_event cev{};
          cev.events = kConnEvents;
          cev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &cev);
          if (connections_ != nullptr) connections_->Add(1);
          if (active_ != nullptr) active_->Add(1);
        }
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn == nullptr) continue;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConn(conn, /*reaped_idle=*/false);
        continue;
      }
      // Readable (or peer half-closed with data pending): hand the whole
      // connection to a worker. EPOLLONESHOT keeps a second event from firing
      // until the worker re-arms, so one session == at most one worker.
      conn->busy.store(true, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        ready_.push_back(std::move(conn));
      }
      queue_cv_.notify_one();
    }
    // Idle reaping: connections with no completed request inside the window.
    if (options_.idle_timeout_ms > 0) {
      const uint64_t now = NowMs();
      std::vector<std::shared_ptr<Conn>> idle;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [fd, conn] : conns_) {
          if (conn->busy.load(std::memory_order_acquire)) continue;
          if (now - conn->last_active_ms.load(std::memory_order_relaxed) >
              options_.idle_timeout_ms) {
            idle.push_back(conn);
          }
        }
      }
      for (auto& conn : idle) CloseConn(conn, /*reaped_idle=*/true);
    }
  }
}

void MoodServer::WorkerLoop() {
  while (true) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !ready_.empty() || !running(); });
      if (!running() && ready_.empty()) return;
      conn = std::move(ready_.front());
      ready_.pop_front();
    }
    ServeConn(conn);
  }
}

Status MoodServer::BlockingWrite(Conn& c, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(c.fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{c.fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 5000) <= 0) return Status::Timeout("write stalled");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

void MoodServer::ServeConn(const std::shared_ptr<Conn>& conn) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  const uint64_t enqueued_ms = NowMs();
  bool eof = false;
  while (true) {
    // Drain the socket.
    while (true) {
      char buf[16 * 1024];
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      eof = true;
      break;
    }
    // Answer every complete frame, in order (pipelining-friendly).
    bool progressed = false;
    while (true) {
      Frame frame;
      Status ferr;
      if (!ExtractFrame(&conn->in, &frame, options_.max_frame_bytes, &ferr)) {
        if (!ferr.ok()) {
          std::string out;
          AppendErrorFrame(&out, ferr);
          (void)BlockingWrite(*conn, out);
          CloseConn(conn, /*reaped_idle=*/false);
          return;
        }
        break;
      }
      progressed = true;
      if (frames_ != nullptr) frames_->Add(1);
      std::string out;
      HandleFrame(*conn, frame, enqueued_ms, &out);
      if (!out.empty()) {
        Status ws = BlockingWrite(*conn, out);
        if (!ws.ok()) {
          // Client vanished mid-request (kill-mid-query): reap the session.
          CloseConn(conn, /*reaped_idle=*/false);
          return;
        }
      }
      conn->last_active_ms.store(NowMs(), std::memory_order_relaxed);
    }
    if (eof) {
      CloseConn(conn, /*reaped_idle=*/false);
      return;
    }
    if (!progressed) break;
    // More bytes may have landed while frames executed; loop to drain again
    // before re-arming (keeps pipelined bursts on one worker pass).
  }
  conn->busy.store(false, std::memory_order_release);
  epoll_event ev{};
  ev.events = kConnEvents;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) < 0) {
    CloseConn(conn, /*reaped_idle=*/false);
  }
}

Status MoodServer::HandleExecuteResult(Conn& c, const Result<ExecResult>& result,
                                       uint32_t chunk_rows, std::string* out) {
  if (!result.ok()) return result.status();
  const ExecResult& res = result.value();
  if (res.kind == ExecResult::Kind::kQuery) {
    const QueryResult& qr = res.query;
    std::string payload;
    PutFixed16(&payload, static_cast<uint16_t>(qr.columns.size()));
    for (const std::string& col : qr.columns) PutLengthPrefixedSlice(&payload, col);
    PutFixed64(&payload, qr.rows.size());
    const size_t inline_rows =
        (chunk_rows == 0 || chunk_rows >= qr.rows.size()) ? qr.rows.size()
                                                          : chunk_rows;
    uint32_t cursor_id = 0;
    if (inline_rows < qr.rows.size()) {
      cursor_id = c.next_cursor_id++;
      Cursor cur;
      cur.columns = qr.columns;
      cur.rows = qr.rows;
      cur.next = inline_rows;
      c.cursors[cursor_id] = std::move(cur);
    }
    PutFixed32(&payload, cursor_id);
    PutFixed32(&payload, static_cast<uint32_t>(inline_rows));
    for (size_t i = 0; i < inline_rows; i++) AppendRow(&payload, qr.rows[i]);
    AppendFrame(out, FrameType::kResultSet, payload);
    return Status::OK();
  }
  std::string payload;
  payload.push_back(static_cast<char>(res.kind));
  PutFixed64(&payload, res.affected);
  PutFixed64(&payload, res.schema_epoch);
  payload.push_back(res.created_oid.has_value() ? 1 : 0);
  PutFixed64(&payload, res.created_oid.has_value() ? res.created_oid->Pack() : 0);
  PutLengthPrefixedSlice(&payload, res.message);
  AppendFrame(out, FrameType::kExecOk, payload);
  return Status::OK();
}

void MoodServer::HandleFrame(Conn& c, const Frame& f, uint64_t enqueued_ms,
                             std::string* out) {
  const uint64_t start_ms = NowMs();
  Status st = [&]() -> Status {
    Slice in(f.payload);
    if (f.type == FrameType::kHello) {
      uint32_t version = 0;
      MOOD_RETURN_IF_ERROR(GetU32(&in, &version));
      if (version != kProtocolVersion) {
        return Status::InvalidArgument(
            "protocol version mismatch: client " + std::to_string(version) +
            ", server " + std::to_string(kProtocolVersion));
      }
      c.hello_done = true;
      std::string payload;
      PutFixed32(&payload, kProtocolVersion);
      PutFixed64(&payload, c.id);
      AppendFrame(out, FrameType::kHelloOk, payload);
      return Status::OK();
    }
    if (!c.hello_done) {
      return Status::InvalidArgument("handshake required before any request");
    }
    switch (f.type) {
      case FrameType::kExecute: {
        uint32_t deadline_ms = 0, chunk = 0;
        std::string sql;
        MOOD_RETURN_IF_ERROR(GetU32(&in, &deadline_ms));
        MOOD_RETURN_IF_ERROR(GetU32(&in, &chunk));
        MOOD_RETURN_IF_ERROR(GetStr(&in, &sql));
        if (deadline_ms == 0) deadline_ms = c.deadline_ms;
        if (chunk == 0) chunk = c.chunk_rows;
        if (deadline_ms > 0 && NowMs() - enqueued_ms > deadline_ms) {
          if (timeouts_ != nullptr) timeouts_->Add(1);
          return Status::Timeout("request exceeded deadline before execution");
        }
        Result<ExecResult> res = c.session->Execute(sql);
        if (deadline_ms > 0 && NowMs() - enqueued_ms > deadline_ms) {
          if (timeouts_ != nullptr) timeouts_->Add(1);
          return Status::Timeout("request exceeded deadline during execution");
        }
        return HandleExecuteResult(c, res, chunk, out);
      }
      case FrameType::kPrepare: {
        std::string sql;
        MOOD_RETURN_IF_ERROR(GetStr(&in, &sql));
        MOOD_ASSIGN_OR_RETURN(PreparedStatement ps, c.session->Prepare(sql));
        const uint32_t id = c.next_stmt_id++;
        const uint32_t params = ps.param_count();
        c.prepared[id] = std::move(ps);
        std::string payload;
        PutFixed32(&payload, id);
        PutFixed32(&payload, params);
        AppendFrame(out, FrameType::kPrepared, payload);
        return Status::OK();
      }
      case FrameType::kBindExecute: {
        uint32_t id = 0, deadline_ms = 0, chunk = 0;
        uint16_t nparams = 0;
        MOOD_RETURN_IF_ERROR(GetU32(&in, &id));
        MOOD_RETURN_IF_ERROR(GetU32(&in, &deadline_ms));
        MOOD_RETURN_IF_ERROR(GetU32(&in, &chunk));
        MOOD_RETURN_IF_ERROR(GetU16(&in, &nparams));
        std::vector<MoodValue> params;
        params.reserve(nparams);
        for (uint16_t i = 0; i < nparams; i++) {
          MOOD_ASSIGN_OR_RETURN(MoodValue v, MoodValue::Decode(&in));
          params.push_back(std::move(v));
        }
        auto it = c.prepared.find(id);
        if (it == c.prepared.end()) {
          return Status::InvalidArgument("unknown prepared statement #" +
                                         std::to_string(id));
        }
        if (deadline_ms == 0) deadline_ms = c.deadline_ms;
        if (chunk == 0) chunk = c.chunk_rows;
        if (deadline_ms > 0 && NowMs() - enqueued_ms > deadline_ms) {
          if (timeouts_ != nullptr) timeouts_->Add(1);
          return Status::Timeout("request exceeded deadline before execution");
        }
        Result<ExecResult> res = c.session->ExecutePrepared(it->second, params);
        if (deadline_ms > 0 && NowMs() - enqueued_ms > deadline_ms) {
          if (timeouts_ != nullptr) timeouts_->Add(1);
          return Status::Timeout("request exceeded deadline during execution");
        }
        return HandleExecuteResult(c, res, chunk, out);
      }
      case FrameType::kFetch: {
        uint32_t id = 0, max_rows = 0;
        MOOD_RETURN_IF_ERROR(GetU32(&in, &id));
        MOOD_RETURN_IF_ERROR(GetU32(&in, &max_rows));
        auto it = c.cursors.find(id);
        if (it == c.cursors.end()) {
          return Status::InvalidArgument("unknown cursor #" + std::to_string(id));
        }
        Cursor& cur = it->second;
        const size_t remaining = cur.rows.size() - cur.next;
        const size_t take =
            (max_rows == 0 || max_rows >= remaining) ? remaining : max_rows;
        std::string payload;
        const bool exhausted = take == remaining;
        PutFixed32(&payload, exhausted ? 0 : id);
        PutFixed32(&payload, static_cast<uint32_t>(take));
        for (size_t i = 0; i < take; i++) AppendRow(&payload, cur.rows[cur.next + i]);
        cur.next += take;
        if (exhausted) c.cursors.erase(it);
        AppendFrame(out, FrameType::kRows, payload);
        return Status::OK();
      }
      case FrameType::kClosePrepared: {
        uint32_t id = 0;
        MOOD_RETURN_IF_ERROR(GetU32(&in, &id));
        c.prepared.erase(id);
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      case FrameType::kSetOption: {
        std::string name;
        uint64_t raw = 0;
        MOOD_RETURN_IF_ERROR(GetStr(&in, &name));
        MOOD_RETURN_IF_ERROR(GetU64(&in, &raw));
        const int64_t value = static_cast<int64_t>(raw);
        QueryOptions q = c.session->default_query_options();
        if (name == "exec_threads") q.exec_threads = static_cast<size_t>(value);
        else if (name == "batch_size") q.batch_size = static_cast<size_t>(value);
        else if (name == "deref_cache_entries") q.deref_cache_entries = static_cast<size_t>(value);
        else if (name == "compile_expressions") q.compile_expressions = value != 0;
        else if (name == "feedback") q.feedback = value != 0;
        else if (name == "use_cache") q.use_cache = value != 0;
        else if (name == "collect_profile") q.collect_profile = value != 0;
        else if (name == "deadline_ms") {
          c.deadline_ms = static_cast<uint32_t>(value);
        } else if (name == "chunk_rows") {
          c.chunk_rows = static_cast<uint32_t>(value);
        } else {
          return Status::InvalidArgument("unknown session option '" + name + "'");
        }
        c.session->SetDefaultQueryOptions(q);
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      case FrameType::kBegin: {
        MOOD_ASSIGN_OR_RETURN(TxnHandle txn, c.session->Begin());
        c.txn = std::move(txn);
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      case FrameType::kCommit: {
        if (!c.txn.active()) return Status::InvalidArgument("no open transaction");
        MOOD_RETURN_IF_ERROR(c.txn.Commit());
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      case FrameType::kAbort: {
        if (!c.txn.active()) return Status::InvalidArgument("no open transaction");
        MOOD_RETURN_IF_ERROR(c.txn.Abort());
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      case FrameType::kBeginSnapshot: {
        MOOD_RETURN_IF_ERROR(c.session->BeginSnapshot());
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      case FrameType::kEndSnapshot: {
        MOOD_RETURN_IF_ERROR(c.session->EndSnapshot());
        AppendFrame(out, FrameType::kOk, {});
        return Status::OK();
      }
      default:
        return Status::InvalidArgument("unexpected frame type " +
                                       std::to_string(static_cast<int>(f.type)));
    }
  }();
  if (!st.ok()) {
    if (errors_ != nullptr) errors_->Add(1);
    out->clear();
    AppendErrorFrame(out, st);
  }
  if (request_us_ != nullptr) request_us_->Record((NowMs() - start_ms) * 1000);
}

}  // namespace net
}  // namespace mood
