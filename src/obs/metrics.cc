#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace mood {

uint64_t MetricHistogram::PercentileUpperBound(double p) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // Rank of the percentile sample (1-based, clamped into [1, total]).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total) + 0.5);
  rank = std::min<uint64_t>(std::max<uint64_t>(rank, 1), total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    seen += counts[i];
    if (seen >= rank) return i == 0 ? 1 : (uint64_t{1} << i);
  }
  return uint64_t{1} << (kBuckets - 1);
}

double MetricsSnapshot::ValueOf(const std::string& name, double fallback) const {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return fallback;
}

bool MetricsSnapshot::Has(const std::string& name) const {
  for (const auto& [n, v] : values) {
    if (n == name) return true;
  }
  return false;
}

namespace {
std::string FormatValue(double v) {
  char buf[64];
  // Counters dominate; print integers exactly, everything else compactly.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}
}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : values) {
    out += name;
    out += ' ';
    out += FormatValue(value);
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); i++) {
    if (i > 0) out += ",";
    out += "\"" + values[i].first + "\":" + FormatValue(values[i].second);
  }
  out += "}";
  return out;
}

MetricCounter* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

MetricHistogram* MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>();
  return slot.get();
}

void MetricsRegistry::RegisterProbe(const std::string& component, Probe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_[component] = std::move(probe);
}

void MetricsRegistry::UnregisterProbe(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.erase(component);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.values.emplace_back(name, static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    snap.values.emplace_back(name, static_cast<double>(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    snap.values.emplace_back(name + ".count", static_cast<double>(h->count()));
    snap.values.emplace_back(name + ".sum", static_cast<double>(h->sum()));
    snap.values.emplace_back(name + ".p50",
                             static_cast<double>(h->PercentileUpperBound(50)));
    snap.values.emplace_back(name + ".p99",
                             static_cast<double>(h->PercentileUpperBound(99)));
  }
  for (const auto& [component, probe] : probes_) {
    probe(&snap.values);
  }
  std::sort(snap.values.begin(), snap.values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

size_t MetricsRegistry::instrument_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() + probes_.size();
}

}  // namespace mood
