#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "core/paper_example.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

/// End-to-end MOODSQL execution over a populated paper database.
class ExecFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(paperdb::CreatePaperSchema(&db_));
    MOOD_ASSERT_OK_AND_ASSIGN(report_, paperdb::PopulatePaperData(&db_, 120));
    MOOD_ASSERT_OK(db_.CollectAllStatistics());
  }

  size_t Count(const std::string& sql) {
    auto r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.value().rows.size() : 0;
  }

  TempDir dir_;
  Database db_;
  paperdb::PopulateReport report_;
};

TEST_F(ExecFixture, ScanWholeExtent) {
  // Only plain Vehicles (their own extent).
  uint64_t plain = report_.vehicles - report_.automobiles - report_.japanese_autos;
  EXPECT_EQ(Count("SELECT v FROM Vehicle v"), plain);
}

TEST_F(ExecFixture, EveryIncludesSubclassesMinusExcludes) {
  EXPECT_EQ(Count("SELECT v FROM EVERY Vehicle v"), report_.vehicles);
  EXPECT_EQ(Count("SELECT v FROM EVERY Vehicle - JapaneseAuto v"),
            report_.vehicles - report_.japanese_autos);
  EXPECT_EQ(Count("SELECT v FROM EVERY Automobile - JapaneseAuto v"),
            report_.automobiles);
}

TEST_F(ExecFixture, ImmediateSelection) {
  // Verify against a manual count.
  size_t expected = 0;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent(
      "VehicleEngine", false, {}, [&](Oid, const MoodValue& t) {
        if (t.elements()[1].AsInteger() == 4) expected++;
        return Status::OK();
      }));
  EXPECT_EQ(Count("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4"), expected);
}

TEST_F(ExecFixture, PathPredicateThroughTwoHops) {
  // Count vehicles (all classes) whose engine has exactly 4 cylinders, manually.
  size_t expected = 0;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent(
      "Vehicle", true, {}, [&](Oid oid, const MoodValue&) {
        return db_.objects()->TraversePath(oid, {"drivetrain", "engine", "cylinders"},
                                           [&](const MoodValue& v) {
                                             if (v.AsInteger() == 4) expected++;
                                             return Status::OK();
                                           });
      }));
  EXPECT_EQ(Count("SELECT v FROM EVERY Vehicle v WHERE "
                  "v.drivetrain.engine.cylinders = 4"),
            expected);
}

TEST_F(ExecFixture, Example81QueryExecutes) {
  // Exactly the paper's Example 8.1 query; company 0 is 'BMW'.
  size_t expected = 0;
  MOOD_ASSERT_OK(db_.objects()->ScanExtent(
      "Vehicle", false, {}, [&](Oid oid, const MoodValue&) -> Status {
        bool bmw = false, cyl2 = false;
        MOOD_RETURN_IF_ERROR(db_.objects()->TraversePath(
            oid, {"company", "name"}, [&](const MoodValue& v) {
              if (v.AsString() == "BMW") bmw = true;
              return Status::OK();
            }));
        MOOD_RETURN_IF_ERROR(db_.objects()->TraversePath(
            oid, {"drivetrain", "engine", "cylinders"}, [&](const MoodValue& v) {
              if (v.AsInteger() == 2) cyl2 = true;
              return Status::OK();
            }));
        if (bmw && cyl2) expected++;
        return Status::OK();
      }));
  EXPECT_EQ(Count(paperdb::kExample81Query), expected);
}

TEST_F(ExecFixture, Section31QueryShape) {
  // The Section 3.1 query: automobiles (minus JapaneseAuto) with automatic
  // transmission and > 4 cylinders, joined explicitly with VehicleEngine.
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult qr, db_.Query(paperdb::kSection31Query));
  // Validate every returned automobile satisfies the predicate.
  for (const auto& row : qr.rows) {
    ASSERT_EQ(row.size(), 1u);
    Oid oid = row[0].AsReference();
    MOOD_ASSERT_OK_AND_ASSIGN(std::string cls, db_.objects()->ClassOf(oid));
    EXPECT_EQ(cls, "Automobile");
    MOOD_ASSERT_OK_AND_ASSIGN(MoodValue dt, db_.objects()->GetAttribute(oid, "drivetrain"));
    MOOD_ASSERT_OK_AND_ASSIGN(MoodValue trans,
                              db_.objects()->GetAttribute(dt.AsReference(), "transmission"));
    EXPECT_EQ(trans.AsString(), "AUTOMATIC");
  }
}

TEST_F(ExecFixture, DisjunctionUnionsWithoutDuplicates) {
  size_t eq2 = Count("SELECT e FROM VehicleEngine e WHERE e.cylinders = 2");
  size_t eq4 = Count("SELECT e FROM VehicleEngine e WHERE e.cylinders = 4");
  size_t either =
      Count("SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR e.cylinders = 4");
  EXPECT_EQ(either, eq2 + eq4);
  // Overlapping terms must not double-count.
  size_t overlap = Count(
      "SELECT e FROM VehicleEngine e WHERE e.cylinders = 2 OR e.size >= 0");
  EXPECT_EQ(overlap, report_.engines);
}

TEST_F(ExecFixture, NotAndComparisonNegation) {
  size_t le8 = Count("SELECT e FROM VehicleEngine e WHERE e.cylinders <= 8");
  size_t not_gt8 = Count("SELECT e FROM VehicleEngine e WHERE NOT e.cylinders > 8");
  EXPECT_EQ(le8, not_gt8);
}

TEST_F(ExecFixture, ProjectionOfPathsAndArithmetic) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult qr,
      db_.Query("SELECT e.cylinders, e.cylinders * 2 + 1 FROM VehicleEngine e"));
  ASSERT_EQ(qr.columns.size(), 2u);
  ASSERT_EQ(qr.rows.size(), report_.engines);
  for (const auto& row : qr.rows) {
    EXPECT_EQ(row[1].AsInteger(), row[0].AsInteger() * 2 + 1);
  }
}

TEST_F(ExecFixture, MethodInvocationInQuery) {
  // lbweight() has an interpretable body `return weight * 2.2075;`.
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult qr, db_.Query("SELECT v.weight, v.lbweight() FROM Vehicle v"));
  ASSERT_GT(qr.rows.size(), 0u);
  for (const auto& row : qr.rows) {
    int32_t w = row[0].AsInteger();
    EXPECT_EQ(row[1].AsInteger(), static_cast<int32_t>(w * 2.2075));
  }
  // A registered compiled body overrides interpretation.
  MoodsFunction decl;
  decl.name = "lbweight";
  decl.return_type = TypeDesc::Basic(BasicType::kInteger);
  MOOD_ASSERT_OK(db_.functions()->Register(
      "Vehicle", decl,
      [](const MethodContext&, const std::vector<MoodValue>&) {
        return Result<MoodValue>(MoodValue::Integer(-1));
      }));
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult qr2,
                            db_.Query("SELECT v.lbweight() FROM Vehicle v"));
  ASSERT_GT(qr2.rows.size(), 0u);
  // Row order is the scan order, which the override does not change — every
  // row must see the compiled body, not just whichever happens to come first.
  for (const auto& row : qr2.rows) EXPECT_EQ(row[0].AsInteger(), -1);
}

TEST_F(ExecFixture, OrderByAscDesc) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult asc,
      db_.Query("SELECT e.size FROM VehicleEngine e ORDER BY e.size"));
  for (size_t i = 1; i < asc.rows.size(); i++) {
    EXPECT_LE(asc.rows[i - 1][0].AsInteger(), asc.rows[i][0].AsInteger());
  }
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult desc,
      db_.Query("SELECT e.size FROM VehicleEngine e ORDER BY e.size DESC"));
  for (size_t i = 1; i < desc.rows.size(); i++) {
    EXPECT_GE(desc.rows[i - 1][0].AsInteger(), desc.rows[i][0].AsInteger());
  }
}

TEST_F(ExecFixture, GroupByHavingDistinct) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult grouped,
      db_.Query("SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders"));
  std::set<int32_t> distinct_groups;
  for (const auto& row : grouped.rows) distinct_groups.insert(row[0].AsInteger());
  EXPECT_EQ(distinct_groups.size(), grouped.rows.size());

  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult having,
      db_.Query("SELECT e.cylinders FROM VehicleEngine e GROUP BY e.cylinders "
                "HAVING e.cylinders > 8"));
  for (const auto& row : having.rows) EXPECT_GT(row[0].AsInteger(), 8);

  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult dist,
      db_.Query("SELECT DISTINCT e.cylinders FROM VehicleEngine e"));
  EXPECT_EQ(dist.rows.size(), distinct_groups.size());
}

TEST_F(ExecFixture, IndexAndScanAgree) {
  size_t before = Count("SELECT e FROM VehicleEngine e WHERE e.cylinders = 6");
  MOOD_ASSERT_OK(
      db_.Execute("CREATE INDEX eng_cyl ON VehicleEngine(cylinders) USING BTREE")
          .status());
  MOOD_ASSERT_OK(db_.CollectStatistics("VehicleEngine"));
  size_t after = Count("SELECT e FROM VehicleEngine e WHERE e.cylinders = 6");
  EXPECT_EQ(before, after);
}

TEST_F(ExecFixture, NewUpdateDeleteStatements) {
  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult created,
      db_.Execute("NEW Employee <999, 'Test Person', 33> AS tester"));
  ASSERT_TRUE(created.created_oid.has_value());
  EXPECT_TRUE(created.created_oid->valid());
  MOOD_ASSERT_OK_AND_ASSIGN(Oid bound, db_.catalog()->LookupName("tester"));
  EXPECT_EQ(bound, *created.created_oid);

  MOOD_ASSERT_OK_AND_ASSIGN(
      ExecResult updated,
      db_.Execute("UPDATE Employee e SET age = e.age + 1 WHERE e.ssno = 999"));
  EXPECT_EQ(updated.affected, 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue age,
                            db_.objects()->GetAttribute(*created.created_oid, "age"));
  EXPECT_EQ(age.AsInteger(), 34);

  MOOD_ASSERT_OK_AND_ASSIGN(ExecResult deleted,
                            db_.Execute("DELETE FROM Employee e WHERE e.ssno = 999"));
  EXPECT_EQ(deleted.affected, 1u);
  EXPECT_FALSE(db_.objects()->Fetch(*created.created_oid).ok());
}

TEST_F(ExecFixture, PersistsAcrossReopen) {
  uint64_t engines = report_.engines;
  MOOD_ASSERT_OK(db_.Close());
  Database db2;
  MOOD_ASSERT_OK(db2.Open(dir_.Path("mood")));
  MOOD_ASSERT_OK_AND_ASSIGN(QueryResult qr, db2.Query("SELECT e FROM VehicleEngine e"));
  EXPECT_EQ(qr.rows.size(), engines);
  // Schema intact: methods still interpretable.
  MOOD_ASSERT_OK(db2.Query("SELECT v.lbweight() FROM Vehicle v").status());
}

TEST_F(ExecFixture, TransactionAbortRollsBackDml) {
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
  MOOD_ASSERT_OK(db_.Execute("NEW Employee <555, 'Ghost', 1> AS ghost").status());
  EXPECT_EQ(Count("SELECT e FROM Employee e WHERE e.ssno = 555"), 1u);
  MOOD_ASSERT_OK(txn.Abort());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(Count("SELECT e FROM Employee e WHERE e.ssno = 555"), 0u);
  // Commit path.
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn2, db_.Begin());
  MOOD_ASSERT_OK(db_.Execute("NEW Employee <556, 'Real', 1>").status());
  MOOD_ASSERT_OK(txn2.Commit());
  EXPECT_EQ(Count("SELECT e FROM Employee e WHERE e.ssno = 556"), 1u);
}

TEST_F(ExecFixture, TxnHandleAutoAbortsOnDestruction) {
  {
    MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
    MOOD_ASSERT_OK(db_.Execute("NEW Employee <557, 'Leaky', 1>").status());
    EXPECT_TRUE(db_.in_transaction());
    // Handle goes out of scope without Commit: the transaction must abort.
  }
  EXPECT_FALSE(db_.in_transaction());
  EXPECT_EQ(Count("SELECT e FROM Employee e WHERE e.ssno = 557"), 0u);
  // Locks released too: a fresh transaction can touch the same extent.
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn2, db_.Begin());
  MOOD_ASSERT_OK(db_.Execute("NEW Employee <558, 'Clean', 1>").status());
  MOOD_ASSERT_OK(txn2.Commit());
  EXPECT_EQ(Count("SELECT e FROM Employee e WHERE e.ssno = 558"), 1u);
}

TEST_F(ExecFixture, CrashRecoveryThroughDatabaseOpen) {
  // Checkpoint the base state (setup ran outside transactions), then commit a
  // change and "crash" (skip Close): the WAL replay must restore the committed
  // change even though its data pages were never flushed.
  MOOD_ASSERT_OK(db_.Checkpoint());
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
  MOOD_ASSERT_OK(db_.Execute("NEW Employee <777, 'Survivor', 40>").status());
  MOOD_ASSERT_OK(txn.Commit());
  // Abandon db_ without a clean close: open a second handle on the same files.
  Database db2;
  MOOD_ASSERT_OK(db2.Open(dir_.Path("mood")));
  MOOD_ASSERT_OK_AND_ASSIGN(
      QueryResult qr, db2.Query("SELECT e FROM Employee e WHERE e.ssno = 777"));
  EXPECT_EQ(qr.rows.size(), 1u);
}

TEST_F(ExecFixture, DmlInsideTransactionHoldsLocks) {
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, db_.Begin());
  MOOD_ASSERT_OK(db_.Execute("NEW Employee <600, 'Locker', 30>").status());
  MOOD_ASSERT_OK(
      db_.Execute("UPDATE Employee e SET age = 31 WHERE e.ssno = 600").status());
  // Strict 2PL: locks held until commit.
  LockManager* lm = db_.txn_manager()->locks();
  EXPECT_GT(lm->LockedResourceCount(), 0u);
  MOOD_ASSERT_OK(txn.Commit());
  EXPECT_EQ(lm->LockedResourceCount(), 0u);
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn2, db_.Begin());
  MOOD_ASSERT_OK(db_.Execute("DELETE FROM Employee e WHERE e.ssno = 600").status());
  MOOD_ASSERT_OK(txn2.Commit());
  EXPECT_EQ(Count("SELECT e FROM Employee e WHERE e.ssno = 600"), 0u);
}

TEST_F(ExecFixture, ErrorsAreReported) {
  EXPECT_TRUE(db_.Query("SELECT x FROM Nowhere x").status().IsNotFound());
  EXPECT_TRUE(db_.Query("SELECT v.nope FROM Vehicle v").status().code() ==
              StatusCode::kCatalogError);
  EXPECT_TRUE(db_.Execute("SELECT FROM").status().IsParseError());
  EXPECT_TRUE(db_.Execute("NEW Vehicle <'wrong-type'>").status().IsTypeError());
}

}  // namespace
}  // namespace mood
