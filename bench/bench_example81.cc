// Reproduces the paper's worked Example 8.1 end to end:
//   Tables 13-15 (the injected example statistics),
//   Tables 11/12/16 (the optimizer dictionaries, with the exact selectivities,
//   forward traversal costs and the F/(1-s) ordering),
//   and the two access plans the paper prints (T1 and the final plan).
// The modeled numbers use the calibrated disk profile (see
// PaperCalibratedDiskParameters); a scaled-down measured run validates the
// estimates against real data.

#include "bench/bench_util.h"
#include "stats/selectivity.h"

using namespace mood;
using namespace mood::bench;

int main() {
  BenchDb scratch("example81");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  paperdb::InstallPaperStatistics(db.stats());

  Banner("Table 13: statistics on the example database");
  {
    Table t({"Class", "|C|", "nbpages(C)", "size(C)"});
    for (const char* cls :
         {"Vehicle", "VehicleDriveTrain", "VehicleEngine", "Company"}) {
      ClassStats s = CheckV(db.stats()->Class(cls), cls);
      t.AddRow({cls, std::to_string(s.cardinality), std::to_string(s.nbpages),
                std::to_string(s.size)});
    }
    t.Print();
  }

  Banner("Table 14: attribute statistics");
  {
    Table t({"Class", "Attribute", "dist", "max", "min"});
    AttributeStats cyl = CheckV(db.stats()->Attribute("VehicleEngine", "cylinders"), "cyl");
    t.AddRow({"VehicleEngine", "cylinders", std::to_string(cyl.dist),
              Fmt(cyl.max_val, 0), Fmt(cyl.min_val, 0)});
    AttributeStats name = CheckV(db.stats()->Attribute("Company", "name"), "name");
    t.AddRow({"Company", "name", std::to_string(name.dist), "-", "-"});
    t.Print();
  }

  Banner("Table 15: reference statistics (totlinks and hitprb derived)");
  {
    Table t({"Class", "Attribute", "fan", "totref", "totlinks", "hitprb"});
    for (auto [cls, attr] : std::vector<std::pair<std::string, std::string>>{
             {"Vehicle", "drivetrain"}, {"Vehicle", "company"},
             {"VehicleDriveTrain", "engine"}}) {
      ReferenceStats r = CheckV(db.stats()->Reference(cls, attr), "ref");
      double totlinks = CheckV(db.stats()->TotLinks(cls, attr), "totlinks");
      double hitprb = CheckV(db.stats()->HitPrb(cls, attr), "hitprb");
      t.AddRow({cls, attr, Fmt(r.fan, 0), std::to_string(r.totref),
                Fmt(totlinks, 0), Fmt(hitprb, 1)});
    }
    t.Print();
  }

  std::printf("\nQuery (Example 8.1):\n  %s\n", paperdb::kExample81Query);
  auto optimized = CheckV(db.Explain(paperdb::kExample81Query, {}), "optimize").optimized;

  Banner("Table 16: PathSelInfo dictionary (ours vs paper)");
  {
    Table t({"Range Var", "Predicate", "Selectivity", "Fwd Traversal Cost",
             "cost/(1-fs)", "paper fs", "paper F", "paper F/(1-fs)"});
    const char* paper_sel[] = {"5.00e-05", "6.25e-02"};
    const char* paper_cost[] = {"520.825", "771.825"};
    const char* paper_rank[] = {"520.825", "823.280"};
    int i = 0;
    for (const auto& e : optimized.terms[0].paths) {
      t.AddRow({e.range_var, e.pred->ToString(), FmtSci(e.selectivity),
                Fmt(e.forward_traversal_cost), Fmt(e.Rank()),
                i < 2 ? paper_sel[i] : "?", i < 2 ? paper_cost[i] : "?",
                i < 2 ? paper_rank[i] : "?"});
      i++;
    }
    t.Print();
    std::printf(
        "note: the paper prints F for P2's rank column; F/(1-s) differs only in\n"
        "the 5th significant digit (s = 5e-5).\n");
  }

  Banner("Access plan (paper: T1 via HASH_PARTITION, then FORWARD_TRAVERSAL x2)");
  std::printf("%s\n", optimized.plan->Explain().c_str());
  std::printf("compact: %s\n", optimized.plan->ToString().c_str());

  Checks checks;
  Banner("Paper conformance checks");
  const auto& paths = optimized.terms[0].paths;
  checks.Expect(paths.size() == 2, "two path expressions in the AND-term");
  checks.Expect(paths[0].path.ToString() == "v.company.name",
                "P2 ordered before P1 (Algorithm 8.1)");
  checks.Expect(std::abs(paths[0].selectivity - 5.00e-5) < 1e-12,
                "P2 selectivity = 5.00e-05 (exact)");
  checks.Expect(std::abs(paths[1].selectivity - 6.25e-2) < 1e-9,
                "P1 selectivity = 6.25e-02 (exact)");
  checks.Expect(std::abs(paths[0].forward_traversal_cost - 520.825) < 1e-6,
                "P2 forward traversal cost = 520.825 (exact)");
  checks.Expect(std::abs(paths[1].forward_traversal_cost - 771.825) < 1e-6,
                "P1 forward traversal cost = 771.825 (exact)");
  checks.Expect(std::abs(paths[1].Rank() - 823.28) < 0.01,
                "P1 rank F/(1-s) = 823.280 (exact)");
  std::string plan = optimized.plan->ToString();
  checks.Expect(plan.find("HASH_PARTITION, v.company =") != std::string::npos,
                "T1 joins Vehicle with selected Company by HASH_PARTITION");
  checks.Expect(plan.find("FORWARD_TRAVERSAL, v.drivetrain =") != std::string::npos,
                "P1 chain starts with FORWARD_TRAVERSAL over v.drivetrain");
  checks.Expect(plan.find("FORWARD_TRAVERSAL") != plan.rfind("FORWARD_TRAVERSAL"),
                "second FORWARD_TRAVERSAL for the engine hop");

  // Measured mode: validate estimated selectivities against real (scaled) data.
  Banner("Measured validation (scale = 400 vehicles, collected statistics)");
  {
    BenchDb scratch2("example81_measured");
    Database mdb;
    Check(mdb.Open(scratch2.Path("mood")), "open measured");
    Check(paperdb::CreatePaperSchema(&mdb), "schema measured");
    auto report = CheckV(paperdb::PopulatePaperData(&mdb, 400), "populate");
    Check(mdb.CollectAllStatistics(), "collect");
    auto qr = CheckV(mdb.Query(paperdb::kExample81Query), "run query");
    auto all = CheckV(mdb.Query("SELECT v FROM Vehicle v"), "count vehicles");
    auto mopt = CheckV(mdb.Explain(paperdb::kExample81Query, {}), "optimize measured").optimized;
    double est = 1.0;
    for (const auto& e : mopt.terms[0].paths) est *= e.selectivity;
    double actual = all.rows.empty()
                        ? 0
                        : static_cast<double>(qr.rows.size()) /
                              static_cast<double>(all.rows.size());
    Table t({"metric", "value"});
    t.AddRow({"vehicles populated (all classes)", std::to_string(report.vehicles)});
    t.AddRow({"plain Vehicle extent", std::to_string(all.rows.size())});
    t.AddRow({"query result rows", std::to_string(qr.rows.size())});
    t.AddRow({"estimated combined selectivity", FmtSci(est)});
    t.AddRow({"actual selectivity", FmtSci(actual)});
    t.Print();
    checks.Expect(qr.rows.size() < all.rows.size() / 4,
                  "query is highly selective on real data too");
  }
  return checks.ExitCode();
}
