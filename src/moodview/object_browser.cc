#include "moodview/object_browser.h"

#include <algorithm>

namespace mood {

Result<std::string> ObjectBrowser::RenderObject(Oid oid, int depth, int indent,
                                                std::vector<Oid>* trail) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (std::find(trail->begin(), trail->end(), oid) != trail->end()) {
    return pad + "<cycle to " + oid.ToString() + ">\n";
  }
  MOOD_ASSIGN_OR_RETURN(std::string cls, objects_->ClassOf(oid));
  MOOD_ASSIGN_OR_RETURN(MoodValue tuple, objects_->Fetch(oid));
  MOOD_ASSIGN_OR_RETURN(auto attrs, objects_->catalog()->AllAttributes(cls));
  std::string out = pad + cls + " " + oid.ToString() + "\n";
  trail->push_back(oid);
  for (size_t i = 0; i < attrs.size(); i++) {
    MoodValue v = i < tuple.size() ? tuple.elements()[i] : attrs[i].type->DefaultValue();
    out += pad + "  " + attrs[i].name + ": ";
    if (v.kind() == ValueKind::kReference && depth > 0 && v.AsReference().valid()) {
      out += "\n";
      MOOD_ASSIGN_OR_RETURN(std::string nested,
                            RenderObject(v.AsReference(), depth - 1, indent + 2, trail));
      out += nested;
    } else if (v.IsCollection() && depth > 0) {
      out += "\n";
      MOOD_ASSIGN_OR_RETURN(std::string nested, RenderValue(v, depth, indent + 2, trail));
      out += nested;
    } else {
      out += v.ToString() + "\n";
    }
  }
  trail->pop_back();
  return out;
}

Result<std::string> ObjectBrowser::RenderValue(const MoodValue& v, int depth,
                                               int indent,
                                               std::vector<Oid>* trail) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out;
  for (const auto& e : v.elements()) {
    if (e.kind() == ValueKind::kReference && depth > 0 && e.AsReference().valid()) {
      MOOD_ASSIGN_OR_RETURN(std::string nested,
                            RenderObject(e.AsReference(), depth - 1, indent, trail));
      out += nested;
    } else {
      out += pad + "- " + e.ToString() + "\n";
    }
  }
  if (v.elements().empty()) out += pad + "(empty)\n";
  return out;
}

Result<std::string> ObjectBrowser::Render(Oid oid, int depth) const {
  std::vector<Oid> trail;
  return RenderObject(oid, depth, 0, &trail);
}

Result<std::string> ObjectBrowser::RenderExtent(const std::string& class_name,
                                                int depth, size_t limit) const {
  std::string out = "=== Extent of " + class_name + " ===\n";
  size_t count = 0;
  size_t total = 0;
  MOOD_RETURN_IF_ERROR(objects_->ScanExtent(
      class_name, false, {}, [&](Oid oid, const MoodValue&) -> Status {
        total++;
        if (count >= limit) return Status::OK();
        count++;
        std::vector<Oid> trail;
        MOOD_ASSIGN_OR_RETURN(std::string rendered, RenderObject(oid, depth, 0, &trail));
        out += rendered;
        return Status::OK();
      }));
  if (total > count) {
    out += "... (" + std::to_string(total - count) + " more objects)\n";
  }
  return out;
}

}  // namespace mood
