#include "index/key_codec.h"

#include <cstring>

namespace mood {

namespace {

void PutBigEndian64(std::string* dst, uint64_t v) {
  for (int i = 7; i >= 0; i--) dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint64_t FlipSign64(int64_t v) {
  return static_cast<uint64_t>(v) ^ (1ULL << 63);
}

uint64_t OrderedDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  // Negative doubles: flip all bits; non-negative: flip the sign bit.
  if (bits & (1ULL << 63)) return ~bits;
  return bits | (1ULL << 63);
}

}  // namespace

void EncodeIndexKey(const MoodValue& v, std::string* dst) {
  switch (v.kind()) {
    case ValueKind::kInteger:
      PutBigEndian64(dst, FlipSign64(v.AsInteger()));
      break;
    case ValueKind::kLongInteger:
      PutBigEndian64(dst, FlipSign64(v.AsLongInteger()));
      break;
    case ValueKind::kFloat:
      PutBigEndian64(dst, OrderedDouble(v.AsFloat()));
      break;
    case ValueKind::kChar:
      dst->push_back(static_cast<char>(static_cast<unsigned char>(v.AsChar()) ^ 0x80));
      break;
    case ValueKind::kBoolean:
      dst->push_back(v.AsBoolean() ? 1 : 0);
      break;
    case ValueKind::kString:
      dst->append(v.AsString());
      break;
    case ValueKind::kReference:
      PutBigEndian64(dst, v.AsReference().Pack());
      break;
    case ValueKind::kNull:
      // Nulls sort lowest: empty key.
      break;
    default:
      // Collections are not indexable keys; encode a stable fallback.
      PutBigEndian64(dst, v.Hash());
      break;
  }
}

std::string MakeIndexKey(const MoodValue& v) {
  std::string out;
  EncodeIndexKey(v, &out);
  return out;
}

}  // namespace mood
