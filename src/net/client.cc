#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mood {
namespace net {

namespace {

Status NetError(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

}  // namespace

MoodClient::~MoodClient() { Close(); }

void MoodClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  session_id_ = 0;
  in_.clear();
}

Status MoodClient::Connect(const std::string& host, uint16_t port,
                           const ClientOptions& options) {
  if (connected()) return Status::InvalidArgument("client already connected");
  options_ = options;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return NetError("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address '" + host + "'");
  }
  // Connect with a timeout: nonblocking connect + poll, then back to blocking.
  int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status st = NetError("connect");
    Close();
    return st;
  }
  if (rc < 0) {
    pollfd pfd{fd_, POLLOUT, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &slen);
    if (pr <= 0 || soerr != 0) {
      Close();
      if (pr <= 0) return Status::Timeout("connect timed out");
      errno = soerr;
      return NetError("connect");
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  std::string hello;
  PutFixed32(&hello, kProtocolVersion);
  Status st = SendFrame(FrameType::kHello, hello);
  if (!st.ok()) {
    Close();
    return st;
  }
  Frame reply;
  st = ReadFrame(&reply);
  if (!st.ok()) {
    Close();
    return st;
  }
  Slice in(reply.payload);
  if (reply.type == FrameType::kError) {
    uint32_t code = 0;
    std::string msg;
    (void)GetU32(&in, &code);
    (void)GetStr(&in, &msg);
    Close();
    return Status::FromCode(static_cast<int>(code), std::move(msg));
  }
  if (reply.type != FrameType::kHelloOk) {
    Close();
    return Status::Corruption("unexpected handshake reply");
  }
  uint32_t version = 0;
  MOOD_RETURN_IF_ERROR(GetU32(&in, &version));
  MOOD_RETURN_IF_ERROR(GetU64(&in, &session_id_));
  return Status::OK();
}

Status MoodClient::SendFrame(FrameType type, const Slice& payload) {
  if (!connected()) return Status::InvalidArgument("client not connected");
  std::string frame;
  AppendFrame(&frame, type, payload);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::Timeout("send timed out");
    }
    return NetError("send");
  }
  return Status::OK();
}

Status MoodClient::ReadFrame(Frame* out) {
  if (!connected()) return Status::InvalidArgument("client not connected");
  while (true) {
    Status ferr;
    if (ExtractFrame(&in_, out, options_.max_frame_bytes, &ferr)) {
      return Status::OK();
    }
    if (!ferr.ok()) return ferr;
    char buf[16 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Unavailable("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("receive timed out");
    }
    return NetError("recv");
  }
}

Status MoodClient::SimpleCall(FrameType type, const Slice& payload) {
  MOOD_RETURN_IF_ERROR(SendFrame(type, payload));
  Frame reply;
  MOOD_RETURN_IF_ERROR(ReadFrame(&reply));
  if (reply.type == FrameType::kOk) return Status::OK();
  if (reply.type == FrameType::kError) {
    Slice in(reply.payload);
    uint32_t code = 0;
    std::string msg;
    (void)GetU32(&in, &code);
    (void)GetStr(&in, &msg);
    return Status::FromCode(static_cast<int>(code), std::move(msg));
  }
  return Status::Corruption("unexpected reply frame");
}

Result<WireResult> MoodClient::ReadExecuteReply() {
  Frame reply;
  MOOD_RETURN_IF_ERROR(ReadFrame(&reply));
  Slice in(reply.payload);
  if (reply.type == FrameType::kError) {
    uint32_t code = 0;
    std::string msg;
    (void)GetU32(&in, &code);
    (void)GetStr(&in, &msg);
    return Status::FromCode(static_cast<int>(code), std::move(msg));
  }
  WireResult out;
  if (reply.type == FrameType::kExecOk) {
    uint8_t has_oid = 0;
    uint64_t packed = 0;
    MOOD_RETURN_IF_ERROR(GetU8(&in, &out.kind));
    MOOD_RETURN_IF_ERROR(GetU64(&in, &out.affected));
    MOOD_RETURN_IF_ERROR(GetU64(&in, &out.schema_epoch));
    MOOD_RETURN_IF_ERROR(GetU8(&in, &has_oid));
    MOOD_RETURN_IF_ERROR(GetU64(&in, &packed));
    MOOD_RETURN_IF_ERROR(GetStr(&in, &out.message));
    if (has_oid != 0) out.created_oid = packed;
    return out;
  }
  if (reply.type != FrameType::kResultSet) {
    return Status::Corruption("unexpected execute reply frame");
  }
  out.kind = 0;
  uint16_t ncols = 0;
  MOOD_RETURN_IF_ERROR(GetU16(&in, &ncols));
  out.columns.resize(ncols);
  for (uint16_t i = 0; i < ncols; i++) {
    MOOD_RETURN_IF_ERROR(GetStr(&in, &out.columns[i]));
  }
  uint64_t total = 0;
  uint32_t cursor_id = 0, nrows = 0;
  MOOD_RETURN_IF_ERROR(GetU64(&in, &total));
  MOOD_RETURN_IF_ERROR(GetU32(&in, &cursor_id));
  MOOD_RETURN_IF_ERROR(GetU32(&in, &nrows));
  out.rows.reserve(total);
  for (uint32_t i = 0; i < nrows; i++) {
    std::vector<MoodValue> row;
    MOOD_RETURN_IF_ERROR(DecodeRow(&in, ncols, &row));
    out.rows.push_back(std::move(row));
  }
  // Fold remaining chunks: FETCH until the server reports the cursor drained.
  while (cursor_id != 0) {
    std::string req;
    PutFixed32(&req, cursor_id);
    PutFixed32(&req, 0);  // server default chunk
    MOOD_RETURN_IF_ERROR(SendFrame(FrameType::kFetch, req));
    Frame chunk;
    MOOD_RETURN_IF_ERROR(ReadFrame(&chunk));
    Slice cin(chunk.payload);
    if (chunk.type == FrameType::kError) {
      uint32_t code = 0;
      std::string msg;
      (void)GetU32(&cin, &code);
      (void)GetStr(&cin, &msg);
      return Status::FromCode(static_cast<int>(code), std::move(msg));
    }
    if (chunk.type != FrameType::kRows) {
      return Status::Corruption("unexpected fetch reply frame");
    }
    out.fetch_round_trips++;
    MOOD_RETURN_IF_ERROR(GetU32(&cin, &cursor_id));
    MOOD_RETURN_IF_ERROR(GetU32(&cin, &nrows));
    for (uint32_t i = 0; i < nrows; i++) {
      std::vector<MoodValue> row;
      MOOD_RETURN_IF_ERROR(DecodeRow(&cin, ncols, &row));
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Result<WireResult> MoodClient::Execute(const std::string& sql,
                                       uint32_t deadline_ms,
                                       uint32_t chunk_rows) {
  std::string payload;
  PutFixed32(&payload, deadline_ms);
  PutFixed32(&payload, chunk_rows);
  PutLengthPrefixedSlice(&payload, sql);
  MOOD_RETURN_IF_ERROR(SendFrame(FrameType::kExecute, payload));
  return ReadExecuteReply();
}

Result<WirePrepared> MoodClient::Prepare(const std::string& sql) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, sql);
  MOOD_RETURN_IF_ERROR(SendFrame(FrameType::kPrepare, payload));
  Frame reply;
  MOOD_RETURN_IF_ERROR(ReadFrame(&reply));
  Slice in(reply.payload);
  if (reply.type == FrameType::kError) {
    uint32_t code = 0;
    std::string msg;
    (void)GetU32(&in, &code);
    (void)GetStr(&in, &msg);
    return Status::FromCode(static_cast<int>(code), std::move(msg));
  }
  if (reply.type != FrameType::kPrepared) {
    return Status::Corruption("unexpected prepare reply frame");
  }
  WirePrepared out;
  MOOD_RETURN_IF_ERROR(GetU32(&in, &out.id));
  MOOD_RETURN_IF_ERROR(GetU32(&in, &out.param_count));
  return out;
}

Result<WireResult> MoodClient::ExecutePrepared(
    const WirePrepared& stmt, const std::vector<MoodValue>& params,
    uint32_t deadline_ms, uint32_t chunk_rows) {
  if (params.size() != stmt.param_count) {
    return Status::InvalidArgument("statement expects " +
                                   std::to_string(stmt.param_count) +
                                   " parameters, got " +
                                   std::to_string(params.size()));
  }
  std::string payload;
  PutFixed32(&payload, stmt.id);
  PutFixed32(&payload, deadline_ms);
  PutFixed32(&payload, chunk_rows);
  PutFixed16(&payload, static_cast<uint16_t>(params.size()));
  for (const MoodValue& v : params) v.EncodeTo(&payload);
  MOOD_RETURN_IF_ERROR(SendFrame(FrameType::kBindExecute, payload));
  return ReadExecuteReply();
}

Status MoodClient::ClosePrepared(const WirePrepared& stmt) {
  std::string payload;
  PutFixed32(&payload, stmt.id);
  return SimpleCall(FrameType::kClosePrepared, payload);
}

Status MoodClient::SetOption(const std::string& name, int64_t value) {
  std::string payload;
  PutLengthPrefixedSlice(&payload, name);
  PutFixed64(&payload, static_cast<uint64_t>(value));
  return SimpleCall(FrameType::kSetOption, payload);
}

Status MoodClient::Begin() { return SimpleCall(FrameType::kBegin); }
Status MoodClient::Commit() { return SimpleCall(FrameType::kCommit); }
Status MoodClient::Abort() { return SimpleCall(FrameType::kAbort); }
Status MoodClient::BeginSnapshot() { return SimpleCall(FrameType::kBeginSnapshot); }
Status MoodClient::EndSnapshot() { return SimpleCall(FrameType::kEndSnapshot); }

}  // namespace net
}  // namespace mood
