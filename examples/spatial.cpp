// The spatial side of MoodView: "a graphical indexing tool for the spatial
// data, i.e., R Trees". Stores city objects with coordinates, builds a Guttman
// R-tree over them, runs window and point queries, and cross-checks against a
// MOODSQL range predicate on the same data.

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "core/database.h"
#include "index/rtree.h"

using namespace mood;

namespace {
void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto dir = std::filesystem::temp_directory_path() / "mood_spatial";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Database db;
  Die(db.Open((dir / "spatial").string()), "open");
  Die(db.Execute("CREATE CLASS City TUPLE (name String(32), x Float, y Float, "
                 "population Integer)")
          .status(),
      "ddl");

  // Populate a 100x100 map with deterministic pseudo-random cities.
  Random rng(1453);
  std::vector<Oid> cities;
  for (int i = 0; i < 500; i++) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    cities.push_back(
        db.objects()
            ->CreateObject("City",
                           MoodValue::Tuple({MoodValue::String("city" + std::to_string(i)),
                                             MoodValue::Float(x), MoodValue::Float(y),
                                             MoodValue::Integer(static_cast<int32_t>(
                                                 1000 + rng.Uniform(1000000)))}))
            .value());
  }
  std::printf("created %zu cities\n", cities.size());

  // Build the R-tree over the city points and register it in the catalog (the
  // indexing-tool flow: spatial indexes are built explicitly).
  auto rtree = RTree::Create(db.storage()->buffer_pool(), db.storage()).value();
  for (Oid oid : cities) {
    double x = db.objects()->GetAttribute(oid, "x").value().AsFloat();
    double y = db.objects()->GetAttribute(oid, "y").value().AsFloat();
    Die(rtree->Insert(Rect::Point(x, y), oid.Pack()), "rtree insert");
  }
  IndexDesc desc;
  desc.name = "city_location";
  desc.class_name = "City";
  desc.attribute = "x,y";
  desc.kind = IndexKind::kRTree;
  desc.meta1 = rtree->meta_page();
  Die(db.catalog()->RegisterIndex(desc), "register");
  Die(rtree->CheckInvariants(), "invariants");
  std::printf("R-tree: %llu entries, height %u\n",
              (unsigned long long)rtree->entries(), rtree->height());

  // Window query through the R-tree vs the equivalent MOODSQL predicate.
  Rect window{20, 20, 40, 40};
  auto hits = rtree->Search(window).value();
  auto sql = db.Query(
      "SELECT c FROM City c WHERE c.x BETWEEN 20.0 AND 40.0 AND "
      "c.y BETWEEN 20.0 AND 40.0");
  Die(sql.status(), "sql window");
  std::printf("window [20,40]x[20,40]: R-tree = %zu, MOODSQL scan = %zu  %s\n",
              hits.size(), sql.value().rows.size(),
              hits.size() == sql.value().rows.size() ? "(agree)" : "(MISMATCH!)");

  // Nearest-ish lookup: grow a window around a point until something appears.
  double px = 50, py = 50;
  for (double r = 1; r <= 64; r *= 2) {
    auto found = rtree->Search(Rect{px - r, py - r, px + r, py + r}).value();
    if (!found.empty()) {
      Oid oid = Oid::Unpack(found[0].second);
      auto name = db.objects()->GetAttribute(oid, "name").value();
      std::printf("nearest city to (50,50) within r=%g: %s at (%.1f, %.1f)\n", r,
                  name.AsString().c_str(), found[0].first.xmin, found[0].first.ymin);
      break;
    }
  }

  // Deleting a city keeps the tree and the extent in sync.
  {
    Oid victim = cities[0];
    double x = db.objects()->GetAttribute(victim, "x").value().AsFloat();
    double y = db.objects()->GetAttribute(victim, "y").value().AsFloat();
    Die(rtree->Delete(Rect::Point(x, y), victim.Pack()), "rtree delete");
    Die(db.objects()->DeleteObject(victim), "object delete");
    std::printf("deleted city0; R-tree now holds %llu entries\n",
                (unsigned long long)rtree->entries());
  }

  // Big-city density per quadrant via window queries + attribute filtering.
  std::printf("\nbig cities (population > 500000) per quadrant:\n");
  for (int qx = 0; qx < 2; qx++) {
    for (int qy = 0; qy < 2; qy++) {
      Rect quad{qx * 50.0, qy * 50.0, (qx + 1) * 50.0, (qy + 1) * 50.0};
      size_t big = 0;
      auto in_quad = rtree->Search(quad).value();
      for (const auto& [rect, packed] : in_quad) {
        Oid oid = Oid::Unpack(packed);
        auto pop = db.objects()->GetAttribute(oid, "population");
        if (pop.ok() && pop.value().AsInteger() > 500000) big++;
      }
      std::printf("  [%d..%d]x[%d..%d]: %zu\n", qx * 50, (qx + 1) * 50, qy * 50,
                  (qy + 1) * 50, big);
    }
  }

  Die(db.Close(), "close");
  std::filesystem::remove_all(dir);
  std::printf("spatial example finished.\n");
  return 0;
}
