#include "txn/lock_manager.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mood {

bool LockManager::Compatible(const Queue& q, uint64_t txn_id, LockMode mode) const {
  for (const Request& r : q.requests) {
    if (!r.granted) continue;
    if (r.txn_id == txn_id) continue;  // own grant: upgrade handled by caller
    if (mode == LockMode::kExclusive || r.mode == LockMode::kExclusive) return false;
  }
  return true;
}

void LockManager::PromoteLocked(Queue& q) {
  for (Request& r : q.requests) {
    if (r.granted) continue;
    if (Compatible(q, r.txn_id, r.mode)) {
      r.granted = true;
    } else {
      break;  // FIFO fairness: do not skip over the blocked head
    }
  }
}

bool LockManager::WouldDeadlockLocked(uint64_t start) const {
  // DFS from `start` over the waits-for graph.
  std::vector<uint64_t> stack{start};
  std::set<uint64_t> seen;
  while (!stack.empty()) {
    uint64_t cur = stack.back();
    stack.pop_back();
    auto it = waits_for_.find(cur);
    if (it == waits_for_.end()) continue;
    for (uint64_t next : it->second) {
      if (next == start) return true;
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

Status LockManager::Acquire(uint64_t txn_id, LockKey key, LockMode mode) {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mu_);
  Queue& q = queues_[key];

  // Re-entrant / upgrade handling.
  for (auto it = q.requests.begin(); it != q.requests.end(); ++it) {
    if (it->txn_id != txn_id || !it->granted) continue;
    if (it->mode == LockMode::kExclusive || it->mode == mode) {
      return Status::OK();  // already strong enough
    }
    // Upgrade S -> X: must wait until no other grants remain.
    for (;;) {
      bool others = false;
      for (const Request& r : q.requests) {
        if (r.granted && r.txn_id != txn_id) {
          others = true;
          waits_for_[txn_id].insert(r.txn_id);
        }
      }
      if (!others) {
        it->mode = LockMode::kExclusive;
        waits_for_.erase(txn_id);
        return Status::OK();
      }
      if (WouldDeadlockLocked(txn_id)) {
        waits_for_.erase(txn_id);
        deadlocks_.fetch_add(1, std::memory_order_relaxed);
        return Status::Deadlock("lock upgrade deadlock on txn " +
                                std::to_string(txn_id));
      }
      wait_blocks_.fetch_add(1, std::memory_order_relaxed);
      cv_.wait(lock);
      // The queue node may have been invalidated only by our own release, which
      // cannot happen while we wait; re-scan from scratch for safety.
      it = std::find_if(q.requests.begin(), q.requests.end(), [&](const Request& r) {
        return r.txn_id == txn_id && r.granted;
      });
      if (it == q.requests.end()) {
        return Status::Internal("lock request vanished during upgrade");
      }
    }
  }

  q.requests.push_back(Request{txn_id, mode, false});
  auto self = std::prev(q.requests.end());
  for (;;) {
    PromoteLocked(q);
    if (self->granted) {
      held_[txn_id].insert(key);
      waits_for_.erase(txn_id);
      cv_.notify_all();
      return Status::OK();
    }
    // Record who blocks us: every granted incompatible holder and every waiter
    // ahead of us in the FIFO.
    auto& blockers = waits_for_[txn_id];
    blockers.clear();
    for (auto it = q.requests.begin(); it != self; ++it) {
      if (it->txn_id != txn_id) blockers.insert(it->txn_id);
    }
    if (WouldDeadlockLocked(txn_id)) {
      q.requests.erase(self);
      waits_for_.erase(txn_id);
      cv_.notify_all();
      deadlocks_.fetch_add(1, std::memory_order_relaxed);
      return Status::Deadlock("deadlock detected for txn " + std::to_string(txn_id));
    }
    wait_blocks_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait(lock);
  }
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto held_it = held_.find(txn_id);
  std::set<LockKey> keys;
  if (held_it != held_.end()) keys = held_it->second;
  // Also purge any pending (ungranted) requests from this transaction.
  for (auto& [key, q] : queues_) {
    q.requests.remove_if([&](const Request& r) { return r.txn_id == txn_id; });
    PromoteLocked(q);
  }
  held_.erase(txn_id);
  waits_for_.erase(txn_id);
  // Drop empty queues to keep the map compact.
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (it->second.requests.empty()) {
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

bool LockManager::Holds(uint64_t txn_id, LockKey key, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find(key);
  if (it == queues_.end()) return false;
  for (const Request& r : it->second.requests) {
    if (r.txn_id == txn_id && r.granted) {
      return mode == LockMode::kShared || r.mode == LockMode::kExclusive;
    }
  }
  return false;
}

size_t LockManager::LockedResourceCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queues_.size();
}

void LockManager::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterProbe(
      "lockman", [this](std::vector<std::pair<std::string, double>>* out) {
        out->emplace_back("lockman.acquires",
                          static_cast<double>(acquires_.load(std::memory_order_relaxed)));
        out->emplace_back("lockman.wait_blocks",
                          static_cast<double>(wait_blocks_.load(std::memory_order_relaxed)));
        out->emplace_back("lockman.deadlocks",
                          static_cast<double>(deadlocks_.load(std::memory_order_relaxed)));
        out->emplace_back("lockman.locked_resources",
                          static_cast<double>(LockedResourceCount()));
      });
}

}  // namespace mood
