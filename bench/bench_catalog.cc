// Figure 2.2 — the representation of the catalog: MoodsType, MoodsAttribute and
// MoodsFunction records for the example schema, as stored on the storage
// manager, plus the typeId/typeName kernel functions and the catalog's
// late-binding resolution.

#include "bench/bench_util.h"

using namespace mood;
using namespace mood::bench;

int main() {
  BenchDb scratch("catalog");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");

  Banner("Figure 2.2: MoodsType records (catalog on the storage manager)");
  {
    Table t({"typeId", "name", "kind", "supers", "extent file", "#attrs", "#methods"});
    for (const MoodsType* type : db.catalog()->AllTypes()) {
      std::string supers;
      for (const auto& s : type->supers) supers += (supers.empty() ? "" : ", ") + s;
      t.AddRow({std::to_string(type->id), type->name,
                type->is_class ? "class" : "type", supers.empty() ? "-" : supers,
                type->extent_file == kInvalidFileId ? "-"
                                                    : std::to_string(type->extent_file),
                std::to_string(type->own_attributes.size()),
                std::to_string(type->functions.size())});
    }
    t.Print();
  }

  Banner("MoodsAttribute records (Vehicle, inherited attributes included)");
  {
    Table t({"attribute", "type"});
    for (const auto& a : CheckV(db.catalog()->AllAttributes("JapaneseAuto"), "attrs")) {
      t.AddRow({a.name, a.type->ToString()});
    }
    t.Print();
    std::printf("(JapaneseAuto inherits everything from Vehicle via Automobile)\n");
  }

  Banner("MoodsFunction records and signatures");
  {
    Table t({"class", "signature", "return", "body stored"});
    for (const MoodsType* type : db.catalog()->AllTypes()) {
      for (const auto& f : type->functions) {
        t.AddRow({type->name, f.Signature(type->name), f.return_type->ToString(),
                  f.body_source.empty() ? "no" : "yes"});
      }
    }
    t.Print();
  }

  Checks checks;
  Banner("Kernel functions and late binding");
  {
    TypeId vid = db.catalog()->typeId("Vehicle");
    std::printf("  typeId(\"Vehicle\") = %u, typeName(%u) = \"%s\"\n", vid, vid,
                db.catalog()->typeName(vid).c_str());
    checks.Expect(vid != kInvalidTypeId, "typeId resolves user classes");
    checks.Expect(db.catalog()->typeId("Integer") == 1,
                  "basic types keep reserved type ids");
    auto resolved = CheckV(db.catalog()->ResolveFunction("JapaneseAuto", "lbweight"),
                           "resolve");
    std::printf("  ResolveFunction(JapaneseAuto, lbweight) -> defined by %s\n",
                resolved.first.c_str());
    checks.Expect(resolved.first == "Vehicle",
                  "late binding walks the IS-A DAG bottom-up");
  }

  Banner("Catalog persistence (compile-time information carried to run time)");
  {
    size_t before = db.catalog()->AllTypes().size();
    Check(db.Close(), "close");
    Database db2;
    Check(db2.Open(scratch.Path("mood")), "reopen");
    checks.Expect(db2.catalog()->AllTypes().size() == before,
                  "all type records survive a restart");
    auto fn = CheckV(db2.catalog()->ResolveFunction("Vehicle", "lbweight"), "fn");
    checks.Expect(!fn.second->body_source.empty(),
                  "method source text persists in the class hierarchy");
  }
  return checks.ExitCode();
}
