// Tests for PR 2's kernel additions: the sharded buffer pool's shard
// resolution and per-shard eviction accounting, scan readahead (prefetched
// pages must be indistinguishable from demand-fetched ones), and the
// per-query Deref cache with write-epoch invalidation.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "objects/object_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/storage_manager.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

// --- Shard resolution -------------------------------------------------------------

TEST(ShardedPoolTest, ExplicitShardCountHonored) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  EXPECT_EQ(BufferPool(&disk, 64, 8).shard_count(), 8u);
  // Non-power-of-two requests round down.
  EXPECT_EQ(BufferPool(&disk, 64, 6).shard_count(), 4u);
  // A request past the frame count is clamped (and rounded down).
  EXPECT_EQ(BufferPool(&disk, 4, 64).shard_count(), 4u);
}

TEST(ShardedPoolTest, TinyPoolsAutoResolveToOneShard) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  // Auto mode keeps at least kMinAutoFramesPerShard frames per shard, so the
  // 8-frame pools the storage tests use behave like the old single-mutex pool.
  EXPECT_EQ(BufferPool(&disk, 8, 0).shard_count(), 1u);
  EXPECT_GE(BufferPool(&disk, 1024, 0).shard_count(), 4u);
}

// --- Per-shard eviction accounting -------------------------------------------------

TEST(ShardedPoolTest, ShardEvictionAccounting) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  for (int i = 0; i < 128; i++) MOOD_ASSERT_OK(disk.AllocatePage().status());

  BufferPool pool(&disk, 8, 4);  // 4 shards x 2 frames
  ASSERT_EQ(pool.shard_count(), 4u);

  // Pick 10 pages that all hash to the same shard, so every eviction lands in
  // that shard's counters.
  const size_t target = pool.ShardOf(0);
  std::vector<PageId> same_shard;
  for (PageId p = 0; p < 128 && same_shard.size() < 10; p++) {
    if (pool.ShardOf(p) == target) same_shard.push_back(p);
  }
  ASSERT_EQ(same_shard.size(), 10u);

  for (PageId p : same_shard) {
    MOOD_ASSERT_OK(pool.FetchPage(p).status());
    MOOD_ASSERT_OK(pool.UnpinPage(p, false));
  }

  // 10 distinct pages through a 2-frame shard: the 2 free frames absorb the
  // first misses, the other 8 displace a resident page.
  BufferPoolStats ts = pool.ShardStats(target);
  EXPECT_EQ(ts.misses, 10u);
  EXPECT_EQ(ts.hits, 0u);
  EXPECT_EQ(ts.evictions, 8u);
  for (size_t s = 0; s < pool.shard_count(); s++) {
    if (s == target) continue;
    BufferPoolStats other = pool.ShardStats(s);
    EXPECT_EQ(other.hits + other.misses + other.evictions, 0u)
        << "shard " << s << " saw traffic for pages of shard " << target;
  }

  // The aggregate snapshot is exactly the per-shard sum.
  BufferPoolStats sum;
  for (size_t s = 0; s < pool.shard_count(); s++) {
    BufferPoolStats ss = pool.ShardStats(s);
    sum.hits += ss.hits;
    sum.misses += ss.misses;
    sum.evictions += ss.evictions;
  }
  BufferPoolStats agg = pool.stats();
  EXPECT_EQ(agg.hits, sum.hits);
  EXPECT_EQ(agg.misses, sum.misses);
  EXPECT_EQ(agg.evictions, sum.evictions);
  EXPECT_EQ(pool.PinnedPageCount(), 0u);
}

// --- Prefetch ----------------------------------------------------------------------

TEST(ShardedPoolTest, PrefetchedPageIsAHitNotAMiss) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p, disk.AllocatePage());

  BufferPool pool(&disk, 8, 1);
  MOOD_ASSERT_OK(pool.Prefetch(p));
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.prefetches, 1u);
  EXPECT_EQ(s.hits + s.misses, 0u);  // prefetch never skews the fetch counters

  MOOD_ASSERT_OK(pool.FetchPage(p).status());
  MOOD_ASSERT_OK(pool.UnpinPage(p, false));
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);

  // Prefetching a resident page is a no-op.
  MOOD_ASSERT_OK(pool.Prefetch(p));
  EXPECT_EQ(pool.stats().prefetches, 1u);
  EXPECT_EQ(pool.PinnedPageCount(), 0u);
}

TEST(ShardedPoolTest, PrefetchSkipsWhenShardFullyPinned) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p0, disk.AllocatePage());
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p1, disk.AllocatePage());

  BufferPool pool(&disk, 1, 1);
  MOOD_ASSERT_OK(pool.FetchPage(p0).status());  // the only frame, pinned
  MOOD_ASSERT_OK(pool.Prefetch(p1));            // must not fail the caller
  EXPECT_EQ(pool.stats().prefetches, 0u);
  MOOD_ASSERT_OK(pool.UnpinPage(p0, false));
}

// --- PageGuard move hygiene --------------------------------------------------------

TEST(ShardedPoolTest, PageGuardMoveReleasesExactlyOnce) {
  TempDir dir;
  DiskManager disk;
  MOOD_ASSERT_OK(disk.Open(dir.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p0, disk.AllocatePage());
  MOOD_ASSERT_OK_AND_ASSIGN(PageId p1, disk.AllocatePage());

  BufferPool pool(&disk, 4, 1);
  {
    MOOD_ASSERT_OK_AND_ASSIGN(Page * a, pool.FetchPage(p0));
    MOOD_ASSERT_OK_AND_ASSIGN(Page * b, pool.FetchPage(p1));
    PageGuard ga(&pool, a);
    PageGuard gb(&pool, b);
    EXPECT_EQ(pool.PinnedPageCount(), 2u);

    // Move-assign releases the destination's old pin and steals the source.
    ga = std::move(gb);
    EXPECT_EQ(pool.PinnedPageCount(), 1u);
    EXPECT_EQ(ga.get()->page_id(), p1);
    EXPECT_FALSE(gb.valid());  // NOLINT(bugprone-use-after-move)

    // Self-move (through a reference, to dodge -Wself-move) must not unpin.
    PageGuard& alias = ga;
    ga = std::move(alias);
    EXPECT_TRUE(ga.valid());
    EXPECT_EQ(pool.PinnedPageCount(), 1u);
  }
  EXPECT_EQ(pool.PinnedPageCount(), 0u);
}

// --- HeapFile readahead ------------------------------------------------------------

TEST(HeapFileReadaheadTest, MonotoneScanPrefetchesAndPreservesRecords) {
  TempDir dir;
  StorageManager storage;
  StorageOptions opts;
  opts.pool_pages = 4;  // far smaller than the file, so readahead matters
  opts.pool_shards = 1;
  opts.readahead_pages = 2;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db"), opts));
  ASSERT_EQ(storage.buffer_pool()->readahead(), 2u);

  MOOD_ASSERT_OK_AND_ASSIGN(FileId fid, storage.CreateFile());
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetFile(fid));
  std::string payload(512, 'x');
  while (file->page_count() < 12) {
    MOOD_ASSERT_OK(file->Insert(payload).status());
  }
  MOOD_ASSERT_OK_AND_ASSIGN(std::vector<PageId> pages, file->PageIds());
  ASSERT_EQ(pages.size(), 12u);

  auto scan_all = [&](HeapFile::ScanCursor* cursor) {
    std::vector<std::string> records;
    for (PageId p : pages) {
      EXPECT_TRUE(file->ScanPage(p, cursor,
                                 [&](RecordId, const std::string& rec) {
                                   records.push_back(rec);
                                   return Status::OK();
                                 })
                      .ok());
    }
    return records;
  };

  std::vector<std::string> plain = scan_all(nullptr);
  HeapFile::ScanCursor warm;  // first cursor'd scan also builds the chain cache
  std::vector<std::string> warmed = scan_all(&warm);
  EXPECT_EQ(plain, warmed);

  // With the chain cached, a fresh monotone scan fetches each page exactly
  // once — and readahead turns nearly all of those fetches into hits.
  storage.buffer_pool()->ResetStats();
  HeapFile::ScanCursor cursor;
  std::vector<std::string> ahead = scan_all(&cursor);
  EXPECT_EQ(plain, ahead);

  BufferPoolStats s = storage.buffer_pool()->stats();
  EXPECT_EQ(s.hits + s.misses, pages.size());  // one demand fetch per page
  EXPECT_LE(s.misses, 4u);                     // everything else was prefetched
  EXPECT_GE(s.prefetches, 8u);
  EXPECT_EQ(storage.buffer_pool()->PinnedPageCount(), 0u);

  // A backward jump must not fault: readahead just stays quiet.
  MOOD_ASSERT_OK(file->ScanPage(pages[0], &cursor,
                                [](RecordId, const std::string&) { return Status::OK(); }));
  MOOD_ASSERT_OK(storage.Close());
}

TEST(HeapFileReadaheadTest, DisabledReadaheadNeverPrefetches) {
  TempDir dir;
  StorageManager storage;
  StorageOptions opts;
  opts.pool_pages = 4;
  opts.pool_shards = 1;
  opts.readahead_pages = 0;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db"), opts));

  MOOD_ASSERT_OK_AND_ASSIGN(FileId fid, storage.CreateFile());
  MOOD_ASSERT_OK_AND_ASSIGN(HeapFile * file, storage.GetFile(fid));
  std::string payload(512, 'x');
  while (file->page_count() < 8) {
    MOOD_ASSERT_OK(file->Insert(payload).status());
  }
  MOOD_ASSERT_OK_AND_ASSIGN(std::vector<PageId> pages, file->PageIds());

  storage.buffer_pool()->ResetStats();
  HeapFile::ScanCursor cursor;
  for (PageId p : pages) {
    MOOD_ASSERT_OK(file->ScanPage(p, &cursor,
                                  [](RecordId, const std::string&) { return Status::OK(); }));
  }
  EXPECT_EQ(storage.buffer_pool()->stats().prefetches, 0u);
  MOOD_ASSERT_OK(storage.Close());
}

// --- Deref cache -------------------------------------------------------------------

class DerefCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db")));
    MOOD_ASSERT_OK(catalog_.Open(&storage_));
    objects_ = std::make_unique<ObjectManager>(&storage_, &catalog_);

    Catalog::ClassDef vehicle;
    vehicle.name = "Vehicle";
    vehicle.attributes.push_back({"id", TypeDesc::Basic(BasicType::kInteger)});
    vehicle.attributes.push_back({"weight", TypeDesc::Basic(BasicType::kInteger)});
    MOOD_ASSERT_OK(catalog_.Define(vehicle).status());
  }

  Result<Oid> NewVehicle(int32_t id, int32_t weight) {
    return objects_->CreateObject(
        "Vehicle", MoodValue::Tuple({MoodValue::Integer(id), MoodValue::Integer(weight)}));
  }

  TempDir dir_;
  StorageManager storage_;
  Catalog catalog_;
  std::unique_ptr<ObjectManager> objects_;
};

TEST_F(DerefCacheFixture, RepeatedFetchHitsTheCache) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(1, 1200));
  DerefCache cache(1024);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v1, objects_->Fetch(oid, &cache));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v2, objects_->Fetch(oid, &cache));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(v1.elements()[1].AsInteger(), 1200);
  EXPECT_EQ(v2.elements()[1].AsInteger(), 1200);

  // GetAttribute and ClassOf share the same snapshot.
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue w, objects_->GetAttribute(oid, "weight", &cache));
  EXPECT_EQ(w.AsInteger(), 1200);
  MOOD_ASSERT_OK_AND_ASSIGN(std::string cls, objects_->ClassOf(oid, &cache));
  EXPECT_EQ(cls, "Vehicle");
  EXPECT_EQ(cache.hits(), 3u);
}

TEST_F(DerefCacheFixture, WriteToClassInvalidatesCachedObjects) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(1, 1200));
  DerefCache cache(1024);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue before, objects_->Fetch(oid, &cache));
  EXPECT_EQ(before.elements()[1].AsInteger(), 1200);

  uint64_t epoch_before = objects_->WriteEpochOf(oid.file);
  MOOD_ASSERT_OK(objects_->SetAttribute(oid, "weight", MoodValue::Integer(1500)));
  EXPECT_GT(objects_->WriteEpochOf(oid.file), epoch_before);

  // The cached snapshot is stale now; the fetch must see the new value.
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue after, objects_->Fetch(oid, &cache));
  EXPECT_EQ(after.elements()[1].AsInteger(), 1500);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue w, objects_->GetAttribute(oid, "weight", &cache));
  EXPECT_EQ(w.AsInteger(), 1500);
}

TEST_F(DerefCacheFixture, CachedAndUncachedReadsAgree) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(7, 900));
  DerefCache cache(1024);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue cached, objects_->Fetch(oid, &cache));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue plain, objects_->Fetch(oid));
  EXPECT_EQ(cached.ToString(), plain.ToString());
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue ca, objects_->GetAttribute(oid, "id", &cache));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue pa, objects_->GetAttribute(oid, "id"));
  EXPECT_EQ(ca.AsInteger(), pa.AsInteger());
}

TEST_F(DerefCacheFixture, ZeroCapacityDisablesCaching) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(2, 800));
  DerefCache cache(0);
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v1, objects_->Fetch(oid, &cache));
  MOOD_ASSERT_OK_AND_ASSIGN(MoodValue v2, objects_->Fetch(oid, &cache));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(v1.ToString(), v2.ToString());
}

TEST_F(DerefCacheFixture, DeleteInvalidatesCachedObject) {
  MOOD_ASSERT_OK_AND_ASSIGN(Oid oid, NewVehicle(3, 700));
  DerefCache cache(1024);
  MOOD_ASSERT_OK(objects_->Fetch(oid, &cache).status());
  MOOD_ASSERT_OK(objects_->DeleteObject(oid));
  // The stale snapshot must not resurrect the object.
  EXPECT_FALSE(objects_->Fetch(oid, &cache).ok());
}

}  // namespace
}  // namespace mood
