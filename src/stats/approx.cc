#include "stats/approx.h"

#include <algorithm>
#include <cmath>

namespace mood {

double CApprox(double n, double m, double r) {
  (void)n;  // kept for signature parity with the paper; the bound min(n, ...) is
            // implied by r <= n in all call sites.
  if (m <= 0) return 0;
  if (r < m / 2.0) return r;
  if (r < 2.0 * m) return (r + m) / 3.0;
  return m;
}

double YaoExact(uint64_t n, uint64_t m, uint64_t k) {
  if (m == 0 || n == 0) return 0;
  if (k >= n) return static_cast<double>(m);
  // p = records per block.
  const double nd = static_cast<double>(n);
  const double p = nd / static_cast<double>(m);
  // P(block untouched) = prod_{i=0}^{k-1} (n - p - i) / (n - i).
  double log_prob = 0;
  for (uint64_t i = 0; i < k; i++) {
    double num = nd - p - static_cast<double>(i);
    double den = nd - static_cast<double>(i);
    if (num <= 0) return static_cast<double>(m);
    log_prob += std::log(num) - std::log(den);
  }
  return static_cast<double>(m) * (1.0 - std::exp(log_prob));
}

double Cardenas(double m, double k) {
  if (m <= 0) return 0;
  return m * (1.0 - std::pow(1.0 - 1.0 / m, k));
}

double OverlapProbability(double t, double x, double y) {
  if (t <= 0 || x <= 0 || y <= 0) return 0;
  if (x >= t || y >= t) return 1.0;
  if (x + y > t) return 1.0;  // pigeonhole: they must intersect
  // Exact product when one cardinality is a small integer:
  //   C(t-x, y)/C(t, y) = prod_{i=0..x-1} (t-y-i)/(t-i)   (x and y symmetric)
  double small = std::min(x, y);
  double large = std::max(x, y);
  if (small == std::floor(small) && small <= 65536) {
    double ratio = 1.0;
    for (double i = 0; i < small; i += 1.0) ratio *= (t - large - i) / (t - i);
    return std::clamp(1.0 - ratio, 0.0, 1.0);
  }
  // General (possibly fractional) case via log-Gamma.
  double log_ratio = std::lgamma(t - x + 1) + std::lgamma(t - y + 1) -
                     std::lgamma(t - x - y + 1) - std::lgamma(t + 1);
  double p = 1.0 - std::exp(log_ratio);
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace mood
