#include "core/session.h"

#include "txn/version_store.h"

namespace mood {

Session::~Session() {
  // TxnHandles minted by this session check the flag before dereferencing
  // their back pointer; flip it first.
  *alive_ = false;
  if (!DbAlive()) return;
  if (txn_ != nullptr && db_->txn_manager_ != nullptr) {
    (void)db_->txn_manager_->Abort(txn_);
    txn_ = nullptr;
    db_->txn_manager_->PruneCompleted();
  }
  if (snapshot_pinned_ && db_->versions_ != nullptr) {
    db_->versions_->UnpinSnapshot(snap_csn_);
    snapshot_pinned_ = false;
  }
  std::lock_guard<std::mutex> lock(db_->sessions_mu_);
  std::erase(db_->sessions_, this);
}

Result<ExecResult> Session::Execute(const std::string& sql,
                                    const QueryOptions& options) {
  if (!DbAlive() || !db_->is_open()) {
    return Status::InvalidArgument("database is not open");
  }
  MOOD_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(sql));
  uint64_t start = ProfileNowNs();
  Result<ExecResult> res = db_->ExecuteStatement(*this, stmt, options, NormalizeSql(sql));
  if (res.ok() && res.value().kind == ExecResult::Kind::kQuery) {
    double elapsed_ms = static_cast<double>(ProfileNowNs() - start) / 1e6;
    size_t threads = db_->ResolveFor(*this, options).exec_threads;
    if (threads == 0) threads = db_->executor_->threads();
    db_->NoteQuery(sql, elapsed_ms, res.value().query.rows.size(), threads);
  }
  return res;
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   const QueryOptions& options) {
  MOOD_ASSIGN_OR_RETURN(ExecResult res, Execute(sql, options));
  if (res.kind != ExecResult::Kind::kQuery) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  return res.query;
}

Result<ExecResult> Session::ExecuteScript(const std::string& sql) {
  if (!DbAlive() || !db_->is_open()) {
    return Status::InvalidArgument("database is not open");
  }
  MOOD_ASSIGN_OR_RETURN(auto stmts, Parser::ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  ExecResult last;
  for (const auto& stmt : stmts) {
    MOOD_ASSIGN_OR_RETURN(last, db_->ExecuteStatement(*this, stmt));
  }
  return last;
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) {
  if (!DbAlive()) return Status::InvalidArgument("database no longer exists");
  return db_->Prepare(sql);
}

Result<ExecResult> Session::ExecutePrepared(const PreparedStatement& stmt,
                                            const std::vector<MoodValue>& params,
                                            const QueryOptions& options) {
  if (!DbAlive() || !db_->is_open()) {
    return Status::InvalidArgument("database is not open");
  }
  if (stmt.stmt_ == nullptr) {
    return Status::InvalidArgument("prepared statement is empty");
  }
  if (stmt.db_ != db_) {
    return Status::InvalidArgument("prepared statement belongs to a different database");
  }
  if (params.size() != stmt.param_count_) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(stmt.param_count_) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  return db_->ExecPrepared(*this, *stmt.stmt_, stmt.normalized_sql_, params, options);
}

Result<TxnHandle> Session::Begin() {
  if (!DbAlive() || !db_->is_open()) {
    return Status::InvalidArgument("database is not open");
  }
  if (db_->txn_manager_ == nullptr) {
    return Status::NotSupported("transactions require enable_wal");
  }
  if (txn_ != nullptr) {
    return Status::InvalidArgument("a transaction is already active");
  }
  if (snapshot_pinned_) {
    return Status::InvalidArgument(
        "a snapshot is pinned on this session; EndSnapshot() first");
  }
  MOOD_ASSIGN_OR_RETURN(txn_, db_->txn_manager_->Begin());
  return TxnHandle(this, txn_, alive_);
}

Status Session::BeginSnapshot() {
  if (!DbAlive() || !db_->is_open()) {
    return Status::InvalidArgument("database is not open");
  }
  if (db_->versions_ == nullptr) {
    return Status::NotSupported("snapshot reads are not available");
  }
  if (txn_ != nullptr) {
    return Status::InvalidArgument("a transaction is already active");
  }
  if (snapshot_pinned_) {
    return Status::InvalidArgument("a snapshot is already pinned on this session");
  }
  // Pin under the shared gate so no writer is mid-mutation: the epoch view
  // captured here is consistent with the pinned CSN (needed for result-cache
  // validation at the pinned snapshot).
  CommitGate::SharedGuard gate(&db_->versions_->gate());
  static_assert(ObjectManager::kEpochSlots == 64,
                "epoch slots must match VersionStore file slots");
  snap_csn_ = db_->versions_->PinSnapshot(&pinned_dirty_);
  for (size_t slot = 0; slot < ObjectManager::kEpochSlots; slot++) {
    pinned_epochs_[slot] = db_->objects_->WriteEpochOf(static_cast<uint16_t>(slot));
  }
  snapshot_pinned_ = true;
  return Status::OK();
}

Status Session::EndSnapshot() {
  if (!snapshot_pinned_) {
    return Status::InvalidArgument("no snapshot is pinned on this session");
  }
  if (DbAlive() && db_->versions_ != nullptr) {
    db_->versions_->UnpinSnapshot(snap_csn_);
  }
  snapshot_pinned_ = false;
  snap_csn_ = 0;
  return Status::OK();
}

Status Session::FinishTxn(Transaction* txn, bool commit) {
  if (!DbAlive() || !db_->is_open()) {
    return Status::InvalidArgument("database no longer exists");
  }
  if (txn == nullptr || txn != txn_) {
    return Status::InvalidArgument("transaction is no longer active");
  }
  Status st = commit ? db_->txn_manager_->Commit(txn) : db_->txn_manager_->Abort(txn);
  txn_ = nullptr;
  db_->txn_manager_->PruneCompleted();
  return st;
}

}  // namespace mood
