#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/session.h"
#include "tests/test_util.h"
#include "txn/version_store.h"

namespace mood {
namespace {

using testing::TempDir;

size_t TestThreads() {
  const char* env = std::getenv("MOOD_TEST_THREADS");
  if (env != nullptr && std::atoi(env) > 0) return static_cast<size_t>(std::atoi(env));
  return 8;
}

class SnapshotFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(db_.Open(dir_.Path("mood")));
    MOOD_ASSERT_OK(db_.ExecuteScript("CREATE CLASS Acc TUPLE (id Integer, val Integer);")
                       .status());
    for (int i = 0; i < 8; i++) {
      MOOD_ASSERT_OK(
          db_.Execute("NEW Acc <" + std::to_string(i) + ", 0>").status());
    }
  }
  TempDir dir_;
  Database db_;
};

/// Reads all Acc.val through `s` and asserts the snapshot is consistent (every
/// committed state has all 8 rows equal). Returns the common value.
int32_t ReadConsistentValue(Session* s) {
  auto qr = s->Query("SELECT a.val FROM Acc a");
  EXPECT_TRUE(qr.ok()) << qr.status().ToString();
  if (!qr.ok()) return -1;
  EXPECT_EQ(qr.value().rows.size(), 8u);
  int32_t common = qr.value().rows.empty() ? -1 : qr.value().rows[0][0].AsInteger();
  for (const auto& row : qr.value().rows) {
    EXPECT_EQ(row[0].AsInteger(), common) << "torn snapshot: mixed row versions";
  }
  return common;
}

// ---------------------------------------------------------------------------
// Single-writer visibility basics
// ---------------------------------------------------------------------------

/// A pinned snapshot session keeps reading the state it pinned while a writer
/// commits past it; EndSnapshot advances it to the latest committed state.
TEST_F(SnapshotFixture, PinnedSnapshotIgnoresLaterCommits) {
  std::unique_ptr<Session> reader = db_.CreateSession();
  MOOD_ASSERT_OK(reader->BeginSnapshot());
  EXPECT_TRUE(reader->in_snapshot());
  EXPECT_EQ(ReadConsistentValue(reader.get()), 0);

  std::unique_ptr<Session> writer = db_.CreateSession();
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, writer->Begin());
  MOOD_ASSERT_OK(writer->Execute("UPDATE Acc a SET val = a.val + 1").status());
  MOOD_ASSERT_OK(txn.Commit());

  // The implicit session reads latest; the pinned session reads as-of pin.
  EXPECT_EQ(ReadConsistentValue(db_.session()), 1);
  EXPECT_EQ(ReadConsistentValue(reader.get()), 0);

  MOOD_ASSERT_OK(reader->EndSnapshot());
  EXPECT_EQ(ReadConsistentValue(reader.get()), 1);
}

/// Uncommitted writes are invisible to snapshot readers, and an abort leaves
/// no trace.
TEST_F(SnapshotFixture, UncommittedAndAbortedWritesInvisible) {
  std::unique_ptr<Session> writer = db_.CreateSession();
  MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, writer->Begin());
  MOOD_ASSERT_OK(writer->Execute("UPDATE Acc a SET val = 99").status());

  std::unique_ptr<Session> reader = db_.CreateSession();
  EXPECT_EQ(ReadConsistentValue(reader.get()), 0) << "dirty write leaked";

  MOOD_ASSERT_OK(txn.Abort());
  EXPECT_EQ(ReadConsistentValue(reader.get()), 0);
}

/// A session with a pinned snapshot is read-only: DML and DDL are rejected
/// centrally with InvalidArgument.
TEST_F(SnapshotFixture, PinnedSessionRejectsWrites) {
  std::unique_ptr<Session> s = db_.CreateSession();
  MOOD_ASSERT_OK(s->BeginSnapshot());
  auto dml = s->Execute("UPDATE Acc a SET val = 5");
  ASSERT_FALSE(dml.ok());
  EXPECT_EQ(dml.status().code(), StatusCode::kInvalidArgument);
  auto ddl = s->Execute("CREATE CLASS Later TUPLE (x Integer)");
  EXPECT_FALSE(ddl.ok());
  // SELECT still works, and a second BeginSnapshot is rejected.
  EXPECT_EQ(ReadConsistentValue(s.get()), 0);
  EXPECT_FALSE(s->BeginSnapshot().ok());
  MOOD_ASSERT_OK(s->EndSnapshot());
  MOOD_ASSERT_OK(s->Execute("UPDATE Acc a SET val = 5").status());
}

/// Sessions are independent: per-session default QueryOptions don't bleed into
/// the implicit session (the deprecated global setter now targets it).
TEST_F(SnapshotFixture, PerSessionQueryOptions) {
  std::unique_ptr<Session> s = db_.CreateSession();
  QueryOptions q;
  q.use_cache = false;
  s->SetDefaultQueryOptions(q);
  EXPECT_EQ(s->default_query_options().use_cache, std::optional<bool>(false));
  // The implicit session (behind the deprecated database-wide setter) is
  // untouched by a per-session default, and vice versa.
  EXPECT_EQ(db_.default_query_options().use_cache, std::nullopt);
  db_.SetDefaultQueryOptions(QueryOptions{});
  EXPECT_EQ(s->default_query_options().use_cache, std::optional<bool>(false));
}

/// Destroying a session mid-transaction aborts it and releases its locks; the
/// TxnHandle outliving its session degrades gracefully.
TEST_F(SnapshotFixture, SessionDeathAbortsTransaction) {
  TxnHandle orphan;
  {
    std::unique_ptr<Session> s = db_.CreateSession();
    MOOD_ASSERT_OK_AND_ASSIGN(TxnHandle txn, s->Begin());
    MOOD_ASSERT_OK(s->Execute("UPDATE Acc a SET val = 77").status());
    orphan = std::move(txn);
  }
  // The session is gone: the write rolled back, the handle is inert.
  EXPECT_EQ(ReadConsistentValue(db_.session()), 0);
  EXPECT_FALSE(orphan.Commit().ok());
}

// ---------------------------------------------------------------------------
// 8 readers vs 2 writers torture
// ---------------------------------------------------------------------------

/// Writers repeatedly increment every row inside a transaction (so every
/// committed state has all rows equal); 8 reader sessions hammer SELECTs.
/// Invariants, per read:
///  - the snapshot is consistent (all rows carry one committed value),
///  - values are monotone per session (a later statement never reads an older
///    committed state than an earlier one — snapshot CSNs only advance).
TEST_F(SnapshotFixture, ReadersNeverSeeTornOrRegressingState) {
  const size_t kReaders = TestThreads();
  constexpr size_t kWritersRounds = 12;
  constexpr size_t kReadsPerReader = 40;
  std::atomic<bool> stop{false};
  std::atomic<size_t> torn{0}, regressed{0}, commits{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&] {
      std::unique_ptr<Session> s = db_.CreateSession();
      for (size_t round = 0; round < kWritersRounds; round++) {
        auto txn = s->Begin();
        if (!txn.ok()) continue;
        // Lock conflicts can pick this txn as deadlock victim: abort + move on.
        auto up = s->Execute("UPDATE Acc a SET val = a.val + 1");
        if (up.ok() && txn.value().Commit().ok()) {
          commits.fetch_add(1);
        } else {
          (void)txn.value().Abort();
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; r++) {
    readers.emplace_back([&] {
      std::unique_ptr<Session> s = db_.CreateSession();
      int32_t last = -1;
      for (size_t i = 0; i < kReadsPerReader && !stop.load(); i++) {
        auto qr = s->Query("SELECT a.val FROM Acc a");
        if (!qr.ok()) continue;
        if (qr.value().rows.size() != 8u) {
          torn.fetch_add(1);
          continue;
        }
        int32_t common = qr.value().rows[0][0].AsInteger();
        for (const auto& row : qr.value().rows) {
          if (row[0].AsInteger() != common) {
            torn.fetch_add(1);
            break;
          }
        }
        if (common < last) regressed.fetch_add(1);
        last = std::max(last, common);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "reader observed a mix of row versions";
  EXPECT_EQ(regressed.load(), 0u) << "reader session's snapshot went backwards";
  EXPECT_GT(commits.load(), 0u);
  // After the dust settles the latest state equals the commit count.
  EXPECT_EQ(ReadConsistentValue(db_.session()),
            static_cast<int32_t>(commits.load()));
  // All statement pins drained: the version store holds no pinned snapshots.
  EXPECT_EQ(db_.versions()->PinnedCount(), 0u);
}

/// Same torture with the readers on long pins: each reader pins a snapshot,
/// reads it several times (must be frozen), unpins, re-pins. Pinned epochs must
/// also never regress across re-pins.
TEST_F(SnapshotFixture, LongPinsStayFrozenAndAdvanceMonotonically) {
  const size_t kReaders = TestThreads();
  std::atomic<size_t> frozen_violations{0}, regressed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; r++) {
    readers.emplace_back([&] {
      std::unique_ptr<Session> s = db_.CreateSession();
      int32_t last = -1;
      for (int pin = 0; pin < 6 && !stop.load(); pin++) {
        if (!s->BeginSnapshot().ok()) continue;
        int32_t first = ReadConsistentValue(s.get());
        for (int i = 0; i < 3; i++) {
          if (ReadConsistentValue(s.get()) != first) frozen_violations.fetch_add(1);
        }
        if (first < last) regressed.fetch_add(1);
        last = std::max(last, first);
        EXPECT_TRUE(s->EndSnapshot().ok());
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&] {
      std::unique_ptr<Session> s = db_.CreateSession();
      for (int round = 0; round < 10; round++) {
        auto txn = s->Begin();
        if (!txn.ok()) continue;
        auto up = s->Execute("UPDATE Acc a SET val = a.val + 1");
        if (!(up.ok() && txn.value().Commit().ok())) (void)txn.value().Abort();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(frozen_violations.load(), 0u) << "pinned snapshot drifted";
  EXPECT_EQ(regressed.load(), 0u);
  EXPECT_EQ(db_.versions()->PinnedCount(), 0u);
}

}  // namespace
}  // namespace mood
