#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_util.h"
#include "types/operand.h"
#include "types/type_desc.h"
#include "types/value.h"

namespace mood {
namespace {

TEST(OidTest, PackUnpackRoundTrip) {
  Oid o;
  o.file = 42;
  o.page = 123456;
  o.slot = 17;
  Oid back = Oid::Unpack(o.Pack());
  EXPECT_EQ(back, o);
  EXPECT_TRUE(o.valid());
  EXPECT_FALSE(kNullOid.valid());
}

TEST(ValueTest, ScalarAccessors) {
  EXPECT_EQ(MoodValue::Integer(-5).AsInteger(), -5);
  EXPECT_DOUBLE_EQ(MoodValue::Float(2.5).AsFloat(), 2.5);
  EXPECT_EQ(MoodValue::LongInteger(1LL << 40).AsLongInteger(), 1LL << 40);
  EXPECT_EQ(MoodValue::String("hi").AsString(), "hi");
  EXPECT_EQ(MoodValue::Char('x').AsChar(), 'x');
  EXPECT_TRUE(MoodValue::Boolean(true).AsBoolean());
  EXPECT_TRUE(MoodValue::Null().is_null());
}

TEST(ValueTest, SetDeduplicates) {
  MoodValue s = MoodValue::Set({MoodValue::Integer(1), MoodValue::Integer(2),
                                MoodValue::Integer(1)});
  EXPECT_EQ(s.size(), 2u);
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_TRUE(MoodValue::Integer(2).Equals(MoodValue::Float(2.0)));
  EXPECT_TRUE(MoodValue::LongInteger(2).Equals(MoodValue::Integer(2)));
  EXPECT_FALSE(MoodValue::Integer(2).Equals(MoodValue::Float(2.5)));
  EXPECT_FALSE(MoodValue::Integer(2).Equals(MoodValue::String("2")));
}

TEST(ValueTest, HashConsistentWithEquals) {
  EXPECT_EQ(MoodValue::Integer(2).Hash(), MoodValue::Float(2.0).Hash());
  EXPECT_EQ(MoodValue::Set({MoodValue::Integer(1), MoodValue::Integer(2)}).Hash(),
            MoodValue::Set({MoodValue::Integer(2), MoodValue::Integer(1)}).Hash());
}

TEST(ValueTest, CompareOrdersScalars) {
  auto cmp = [](const MoodValue& a, const MoodValue& b) {
    auto r = a.Compare(b);
    EXPECT_TRUE(r.ok());
    return r.value();
  };
  EXPECT_LT(cmp(MoodValue::Integer(1), MoodValue::Integer(2)), 0);
  EXPECT_GT(cmp(MoodValue::Float(2.5), MoodValue::Integer(2)), 0);
  EXPECT_EQ(cmp(MoodValue::String("abc"), MoodValue::String("abc")), 0);
  EXPECT_LT(cmp(MoodValue::String("abc"), MoodValue::String("abd")), 0);
  EXPECT_FALSE(MoodValue::Integer(1).Compare(MoodValue::String("1")).ok());
}

MoodValue RandomValue(Random* rng, int depth) {
  switch (rng->Uniform(depth > 0 ? 10 : 7)) {
    case 0: return MoodValue::Null();
    case 1: return MoodValue::Integer(static_cast<int32_t>(rng->Range(-1000, 1000)));
    case 2: return MoodValue::Float(rng->NextDouble() * 100);
    case 3: return MoodValue::LongInteger(rng->Range(-100000, 100000));
    case 4: return MoodValue::String(std::string(rng->Uniform(20), 's'));
    case 5: return MoodValue::Char(static_cast<char>('a' + rng->Uniform(26)));
    case 6: {
      Oid o;
      o.file = static_cast<uint16_t>(rng->Uniform(100));
      o.page = static_cast<uint32_t>(rng->Uniform(10000));
      o.slot = static_cast<uint16_t>(rng->Uniform(100));
      return MoodValue::Reference(o);
    }
    default: {
      MoodValue::ValueList elems;
      size_t n = rng->Uniform(4);
      for (size_t i = 0; i < n; i++) elems.push_back(RandomValue(rng, depth - 1));
      switch (rng->Uniform(3)) {
        case 0: return MoodValue::Tuple(std::move(elems));
        case 1: return MoodValue::Set(std::move(elems));
        default: return MoodValue::List(std::move(elems));
      }
    }
  }
}

class ValueSerializationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueSerializationProperty, EncodeDecodeRoundTrip) {
  Random rng(GetParam());
  for (int i = 0; i < 200; i++) {
    MoodValue v = RandomValue(&rng, 3);
    std::string buf;
    v.EncodeTo(&buf);
    auto back = MoodValue::DecodeAll(buf);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(v.Equals(back.value())) << v.ToString() << " vs "
                                        << back.value().ToString();
    EXPECT_EQ(v.Hash(), back.value().Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueSerializationProperty,
                         ::testing::Values(11, 22, 33));

TEST(ValueTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(MoodValue::DecodeAll(Slice("\xFF\xFF\xFF")).ok());
  EXPECT_FALSE(MoodValue::DecodeAll(Slice("")).ok());
  // Trailing bytes.
  std::string buf;
  MoodValue::Integer(1).EncodeTo(&buf);
  buf += "junk";
  EXPECT_FALSE(MoodValue::DecodeAll(buf).ok());
}

TEST(ValueTest, CopyOnWriteKeepsValueSemantics) {
  MoodValue a = MoodValue::List({MoodValue::Integer(1)});
  MoodValue b = a;
  b.mutable_elements().push_back(MoodValue::Integer(2));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(TypeDescTest, ToStringMatchesDdlSyntax) {
  auto t = TypeDesc::Tuple(
      {{"id", TypeDesc::Basic(BasicType::kInteger)},
       {"name", TypeDesc::SizedString(32)},
       {"refs", TypeDesc::Set(TypeDesc::Reference("Company"))}});
  EXPECT_EQ(t->ToString(),
            "TUPLE (id Integer, name String(32), refs SET (REFERENCE (Company)))");
}

TEST(TypeDescTest, EncodeDecodeRoundTrip) {
  auto t = TypeDesc::Tuple(
      {{"a", TypeDesc::Basic(BasicType::kFloat)},
       {"b", TypeDesc::List(TypeDesc::Basic(BasicType::kBoolean))},
       {"c", TypeDesc::Reference("X")},
       {"d", TypeDesc::Tuple({{"n", TypeDesc::SizedString(8)}})}});
  std::string buf;
  t->EncodeTo(&buf);
  Slice in(buf);
  auto back = TypeDesc::Decode(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(t->Equals(*back.value()));
  EXPECT_TRUE(in.empty());
}

TEST(TypeDescTest, CheckValueAcceptsAndRejects) {
  auto t = TypeDesc::Tuple({{"id", TypeDesc::Basic(BasicType::kInteger)},
                            {"name", TypeDesc::SizedString(4)}});
  MOOD_EXPECT_OK(t->CheckValue(
      MoodValue::Tuple({MoodValue::Integer(1), MoodValue::String("abcd")})));
  // Over-capacity string.
  EXPECT_TRUE(t->CheckValue(MoodValue::Tuple({MoodValue::Integer(1),
                                              MoodValue::String("abcde")}))
                  .IsTypeError());
  // Arity mismatch.
  EXPECT_TRUE(t->CheckValue(MoodValue::Tuple({MoodValue::Integer(1)})).IsTypeError());
  // Wrong field type.
  EXPECT_TRUE(t->CheckValue(MoodValue::Tuple({MoodValue::String("x"),
                                              MoodValue::String("ab")}))
                  .IsTypeError());
  // Nulls allowed anywhere.
  MOOD_EXPECT_OK(
      t->CheckValue(MoodValue::Tuple({MoodValue::Null(), MoodValue::Null()})));
}

TEST(TypeDescTest, NumericWidening) {
  auto f = TypeDesc::Basic(BasicType::kFloat);
  MOOD_EXPECT_OK(f->CheckValue(MoodValue::Integer(1)));
  MOOD_EXPECT_OK(f->CheckValue(MoodValue::LongInteger(1)));
  auto i = TypeDesc::Basic(BasicType::kInteger);
  EXPECT_TRUE(i->CheckValue(MoodValue::Float(1.0)).IsTypeError());
}

TEST(TypeDescTest, DefaultValuesConform) {
  auto t = TypeDesc::Tuple({{"a", TypeDesc::Basic(BasicType::kInteger)},
                            {"b", TypeDesc::Set(TypeDesc::Reference("X"))},
                            {"c", TypeDesc::SizedString(3)}});
  MOOD_EXPECT_OK(t->CheckValue(t->DefaultValue()));
}

// --- OperandDataType: the paper's run-time expression interpreter --------------

TEST(OperandTest, PaperSection2Example) {
  // OperandDataType x(INT16), y(INT32), z(DOUBLE);
  // x = 10; y = 13;
  // z = (x*3 + x%3) * (y/4*5);  // integer arithmetic, result cast to double
  OperandDataType x(DataTypeCode::kInt16), y(DataTypeCode::kInt32),
      z(DataTypeCode::kDouble);
  x = int64_t{10};
  y = int64_t{13};
  OperandDataType three(DataTypeCode::kInt16), four(DataTypeCode::kInt16),
      five(DataTypeCode::kInt16);
  three = int64_t{3};
  four = int64_t{4};
  five = int64_t{5};
  z.Assign((x * three + x % three) * (y / four * five));
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  // (30 + 1) * (3 * 5) = 465, cast to double.
  MOOD_ASSERT_OK_AND_ASSIGN(double d, z.AsDouble());
  EXPECT_DOUBLE_EQ(d, 465.0);
  EXPECT_EQ(z.code(), DataTypeCode::kDouble);
}

TEST(OperandTest, Int16TruncatesOnAssign) {
  OperandDataType x(DataTypeCode::kInt16);
  x = int64_t{70000};
  MOOD_ASSERT_OK_AND_ASSIGN(int64_t v, x.AsInt());
  EXPECT_EQ(v, static_cast<int16_t>(70000));
}

TEST(OperandTest, PromotionRules) {
  OperandDataType i16(DataTypeCode::kInt16), i64(DataTypeCode::kInt64),
      d(DataTypeCode::kDouble);
  i16 = int64_t{5};
  i64 = int64_t{7};
  d = 2.5;
  EXPECT_EQ((i16 + i64).code(), DataTypeCode::kInt64);
  EXPECT_EQ((i16 + d).code(), DataTypeCode::kDouble);
  EXPECT_EQ((i16 + i16).code(), DataTypeCode::kInt16);
}

TEST(OperandTest, IntegerDivisionAndModulo) {
  OperandDataType a(DataTypeCode::kInt32), b(DataTypeCode::kInt32);
  a = int64_t{13};
  b = int64_t{4};
  EXPECT_EQ((a / b).AsInt().value(), 3);
  EXPECT_EQ((a % b).AsInt().value(), 1);
  OperandDataType z(DataTypeCode::kInt32);
  z = int64_t{0};
  EXPECT_FALSE((a / z).ok());
  EXPECT_FALSE((a % z).ok());
}

TEST(OperandTest, ModuloOnFloatsIsTypeError) {
  OperandDataType a(DataTypeCode::kDouble), b(DataTypeCode::kInt32);
  a = 2.5;
  b = int64_t{2};
  EXPECT_TRUE((a % b).status().IsTypeError());
}

TEST(OperandTest, ComparisonsAndBooleans) {
  OperandDataType a(DataTypeCode::kInt32), b(DataTypeCode::kDouble);
  a = int64_t{3};
  b = 3.5;
  EXPECT_TRUE((a < b).AsBool().value());
  EXPECT_FALSE((a >= b).AsBool().value());
  EXPECT_TRUE((a != b).AsBool().value());
  OperandDataType t(DataTypeCode::kBool), f(DataTypeCode::kBool);
  t = true;
  f = false;
  EXPECT_FALSE((t && f).AsBool().value());
  EXPECT_TRUE((t || f).AsBool().value());
  EXPECT_TRUE((!f).AsBool().value());
}

TEST(OperandTest, StringOperations) {
  OperandDataType a(DataTypeCode::kString), b(DataTypeCode::kString);
  a = std::string("AUTO");
  b = std::string("MATIC");
  EXPECT_EQ((a + b).AsStringValue().value(), "AUTOMATIC");
  EXPECT_TRUE((a < b).AsBool().value());
  EXPECT_FALSE((a == b).AsBool().value());
}

TEST(OperandTest, TypeErrorsPoisonAndPropagate) {
  OperandDataType s(DataTypeCode::kString), i(DataTypeCode::kInt32);
  s = std::string("x");
  i = int64_t{1};
  OperandDataType bad = s * i;  // arithmetic on a string
  EXPECT_FALSE(bad.ok());
  OperandDataType worse = bad + i;  // propagates
  EXPECT_FALSE(worse.ok());
  EXPECT_TRUE(worse.status().IsTypeError());
}

TEST(OperandTest, AssignConvertsAcrossTypes) {
  OperandDataType d(DataTypeCode::kDouble);
  d = 2.9;
  OperandDataType i(DataTypeCode::kInt32);
  i.Assign(d);  // run-time cast double -> int truncates
  EXPECT_EQ(i.AsInt().value(), 2);
}

TEST(OperandTest, FromValueAndToValueRoundTrip) {
  auto check = [](const MoodValue& v) {
    OperandDataType o = OperandDataType::FromValue(v);
    ASSERT_TRUE(o.ok());
    auto back = o.ToValue();
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(v.Equals(back.value())) << v.ToString();
  };
  check(MoodValue::Integer(7));
  check(MoodValue::Float(1.5));
  check(MoodValue::LongInteger(1LL << 33));
  check(MoodValue::Boolean(true));
  check(MoodValue::String("str"));
}

TEST(OperandTest, NonScalarValueRejected) {
  OperandDataType o = OperandDataType::FromValue(MoodValue::Set({}));
  EXPECT_FALSE(o.ok());
}

}  // namespace
}  // namespace mood
