#include "stats/sketch.h"

#include <cmath>

namespace mood {

uint64_t DistinctSketch::Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // One finalization round spreads low-entropy encodings (small integers)
  // across the register index bits.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

void DistinctSketch::AddHash(uint64_t hash) {
  if (dense_.empty()) {
    sparse_.insert(hash);
    if (sparse_.size() > kSparseLimit) Densify();
    return;
  }
  DenseAdd(hash);
}

void DistinctSketch::Densify() {
  dense_.assign(kRegisters, 0);
  for (uint64_t h : sparse_) DenseAdd(h);
  sparse_.clear();
}

void DistinctSketch::DenseAdd(uint64_t hash) {
  const size_t reg = hash >> (64 - kRegisterBits);
  // Rank: position of the first 1-bit in the remaining bits (1-based).
  uint64_t rest = hash << kRegisterBits;
  uint8_t rank = 1;
  while (rest != 0 && (rest & (1ull << 63)) == 0 && rank < 64 - kRegisterBits) {
    rest <<= 1;
    rank++;
  }
  if (rest == 0) rank = static_cast<uint8_t>(64 - kRegisterBits + 1);
  if (rank > dense_[reg]) dense_[reg] = rank;
}

uint64_t DistinctSketch::Estimate() const {
  if (dense_.empty()) return sparse_.size();
  const double m = static_cast<double>(kRegisters);
  double inv_sum = 0;
  size_t zeros = 0;
  for (uint8_t r : dense_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) zeros++;
  }
  const double alpha = 0.7213 / (1.0 + 1.079 / m);  // standard HLL constant
  double estimate = alpha * m * m / inv_sum;
  // Linear-counting correction for the low range (sparse mode already covers
  // most of it, but densify at 4096 < 2.5 * 1024 registers leaves a window).
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<uint64_t>(estimate + 0.5);
}

}  // namespace mood
