#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace mood {

/// On-disk, every logical 4 KiB page is stored as a physical frame with an
/// 8-byte header in front of the payload:
///   [0..4)  CRC-32C over the 4096 payload bytes, extended with the page id
///           (catches misdirected writes, not just bit flips)
///   [4..8)  magic 'MPG1' (format marker; a frame without it is torn/foreign)
/// The header is owned entirely by the DiskManager — no layer above ever sees
/// it, so slotted pages, index nodes and directory pages keep their full
/// 4096-byte layouts. Verified on every read; a mismatch surfaces as
/// Status::Corruption and counts into DiskStats::checksum_failures (exported
/// as the `storage.checksum_failures` metric).
inline constexpr size_t kPageFrameHeaderSize = 8;
inline constexpr size_t kDiskFrameSize = kPageSize + kPageFrameHeaderSize;
inline constexpr uint32_t kPageFrameMagic = 0x3147504du;  // "MPG1" little-endian

/// I/O statistics the benchmark harness reads to compare *measured* page accesses
/// against the paper's cost formulas (SEQCOST / RNDCOST, Section 5).
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  /// Reads whose page id immediately follows the previously read page id; the
  /// remainder are counted as random. This is how bench_file_ops classifies the
  /// measured access pattern.
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  /// Reads whose frame failed CRC/magic verification (torn or corrupt writes).
  uint64_t checksum_failures = 0;

  void Clear() { *this = DiskStats{}; }
};

/// Page-granular file I/O. One DiskManager owns one OS file. Thread-safe.
///
/// Failpoints (see common/failpoint.h): `disk.read_page`, `disk.write_page`
/// (supports torn modes — a torn write persists only the first half of the
/// frame), `disk.sync`.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) the backing file. A non-empty file whose
  /// leading frame headers carry no 'MPG1' magic (a pre-frame-format database
  /// or a foreign file) is rejected with NotSupported instead of being
  /// misread as all-corrupt; a single torn frame does not trip this check.
  Status Open(const std::string& path);
  Status Close();

  /// Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Grows the file with zeroed pages until `page_id` exists. Recovery uses
  /// this to re-create pages whose allocating write was lost in a crash.
  Status EnsureAllocated(PageId page_id);

  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  /// Forces written data to stable storage.
  Status Sync();

  uint32_t num_pages() const { return num_pages_; }
  bool is_open() const { return fd_ >= 0; }

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_.Clear(); }

 private:
  /// Encodes `data` into a checksummed frame and pwrites it. Requires mu_ held;
  /// carries the `disk.write_page` failpoint (error / torn / crash modes).
  Status WriteFrameLocked(PageId page_id, const char* data);

  int fd_ = -1;
  std::string path_;
  uint32_t num_pages_ = 0;
  PageId last_read_page_ = kInvalidPageId;
  DiskStats stats_;
  mutable std::mutex mu_;
};

}  // namespace mood
