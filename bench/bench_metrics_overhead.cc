// Prices the observability layer's overhead contract (DESIGN.md §8):
//  - instrument hot-path cost: MetricCounter::Add and MetricHistogram::Record
//    throughput, single-threaded and contended;
//  - Snapshot() cost over the full engine registry;
//  - per-query cost of profiling: the same query with QueryOptions defaults
//    (profiling off — the executor's check is one pointer test per operator)
//    vs collect_profile=true (per-operator timing + buffer-pool deltas).
// Timing rows are informative; the hard checks are result parity, profile
// shape, and the bufferpool hits+misses == fetches invariant.

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "obs/query_profile.h"

using namespace mood;
using namespace mood::bench;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// Median wall-clock ms of `reps` calls to `fn`.
template <typename Fn>
double MedianMs(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; i++) {
    auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(MillisSince(start));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = WantJson(argc, argv);
  JsonReport report_json("bench_metrics_overhead");
  Checks checks;

  // --- Instrument microbenchmarks (registry-owned atomics).
  Banner("Instrument hot-path cost");
  {
    MetricsRegistry reg;
    MetricCounter* c = reg.Counter("bench.counter");
    MetricHistogram* h = reg.Histogram("bench.hist");
    constexpr uint64_t kOps = 4'000'000;
    double add_ms = MedianMs(5, [&] {
      for (uint64_t i = 0; i < kOps; i++) c->Add(1);
    });
    double rec_ms = MedianMs(5, [&] {
      for (uint64_t i = 0; i < kOps; i++) h->Record(i & 0xffff);
    });
    // Contended: 4 threads hammering the same counter.
    double contended_ms = MedianMs(3, [&] {
      std::vector<std::thread> workers;
      for (int t = 0; t < 4; t++) {
        workers.emplace_back([&] {
          for (uint64_t i = 0; i < kOps / 4; i++) c->Add(1);
        });
      }
      for (auto& w : workers) w.join();
    });
    double snap_us = MedianMs(20, [&] { reg.Snapshot(); }) * 1000;
    Table t({"operation", "mops/s"});
    t.AddRow({"counter Add, 1 thread", Fmt(kOps / add_ms / 1000, 1)});
    t.AddRow({"histogram Record, 1 thread", Fmt(kOps / rec_ms / 1000, 1)});
    t.AddRow({"counter Add, 4 threads shared", Fmt(kOps / contended_ms / 1000, 1)});
    t.Print();
    std::printf("registry Snapshot(): %.1f us\n", snap_us);
    report_json.Metric("instruments", "counter_add_mops", kOps / add_ms / 1000);
    report_json.Metric("instruments", "hist_record_mops", kOps / rec_ms / 1000);
    report_json.Metric("instruments", "counter_add_contended_mops",
                       kOps / contended_ms / 1000);
    report_json.Metric("instruments", "snapshot_us", snap_us);
    checks.Expect(c->value() > 0 && h->count() == 5 * kOps,
                  "instrument updates observed");
  }

  // --- Per-query profiling overhead.
  BenchDb scratch("metrics_overhead");
  Database db;
  Check(db.Open(scratch.Path("mood")), "open");
  Check(paperdb::CreatePaperSchema(&db), "schema");
  Check(paperdb::PopulatePaperData(&db, 400).status(), "populate");
  Check(db.CollectAllStatistics(), "collect");

  struct Query {
    const char* key;
    std::string sql;
  };
  std::vector<Query> queries = {
      {"example81", paperdb::kExample81Query},
      {"example82", paperdb::kExample82Query},
      {"section31", paperdb::kSection31Query},
  };

  Banner("Query latency: profiling off vs on (median of 15)");
  Table t({"query", "off ms", "on ms", "overhead"});
  for (const auto& q : queries) {
    QueryOptions off;           // defaults: no profile
    QueryOptions on;
    on.collect_profile = true;

    auto base = CheckV(db.Query(q.sql, off), q.key);  // warm caches
    auto profiled = CheckV(db.Execute(q.sql, on), q.key);
    checks.Expect(profiled.query.ToString() == base.ToString(),
                  std::string(q.key) + ": profiled rows identical");
    std::shared_ptr<QueryProfile> profile = profiled.profile;
    double off_ms = MedianMs(15, [&] { CheckV(db.Query(q.sql, off), q.key); });
    double on_ms =
        MedianMs(15, [&] { CheckV(db.Execute(q.sql, on), q.key); });
    double overhead_pct = (on_ms - off_ms) / std::max(off_ms, 1e-6) * 100;
    t.AddRow({q.key, Fmt(off_ms, 3), Fmt(on_ms, 3), Fmt(overhead_pct, 1) + "%"});
    report_json.Metric("profiling_off_ms", q.key, off_ms);
    report_json.Metric("profiling_on_ms", q.key, on_ms);
    report_json.Metric("profiling_overhead_pct", q.key, overhead_pct);
    checks.Expect(profile != nullptr && !profile->children.empty(),
                  std::string(q.key) + ": profile tree attached");
  }
  t.Print();
  std::printf(
      "the off column is the contract: with collect_profile unset the executor\n"
      "pays one null-pointer test per operator, so plain Query() latency must\n"
      "track pre-observability baselines (BENCH_baseline.json bench_query_e2e).\n");

  // --- Engine invariants after the workload.
  MetricsSnapshot snap = db.metrics()->Snapshot();
  checks.Expect(snap.ValueOf("bufferpool.fetches", -1) ==
                    snap.ValueOf("bufferpool.hits", 0) +
                        snap.ValueOf("bufferpool.misses", 0),
                "bufferpool fetches == hits + misses");
  checks.Expect(snap.ValueOf("exec.queries", 0) > 0, "exec.queries counted");
  checks.Expect(snap.ValueOf("exec.query_us.count", 0) > 0,
                "query latency histogram populated");

  if (json) {
    AddMetricsSnapshot(&report_json, db.metrics());
    report_json.Emit(JsonPath(argc, argv));
  }
  return checks.ExitCode();
}
