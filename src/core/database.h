#pragma once

#include <memory>
#include <string>

#include "algebra/operators.h"
#include "catalog/catalog.h"
#include "exec/executor.h"
#include "funcman/function_manager.h"
#include "moodview/object_browser.h"
#include "moodview/query_manager.h"
#include "moodview/schema_browser.h"
#include "objects/object_manager.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "stats/statistics.h"
#include "storage/storage_manager.h"
#include "txn/transaction.h"

namespace mood {

struct DatabaseOptions {
  size_t pool_pages = 1024;
  /// Buffer-pool shard count. 0 = auto (max(4, hardware threads), capped so
  /// each shard keeps a useful number of frames); rounded down to a power of
  /// two. Shards cut lock contention between parallel morsel workers.
  size_t pool_shards = 0;
  /// Sequential-scan readahead depth in pages (0 disables). Full scans detect
  /// monotone page access and prefetch this many chain pages ahead.
  size_t readahead_pages = 4;
  /// Per-query Deref-cache capacity in objects (0 disables). Repeated path-
  /// expression hops over the same objects within one query hit memory; any
  /// write to a class invalidates its cached objects (see DerefCache).
  size_t deref_cache_entries = 4096;
  /// Write-ahead logging + crash recovery (the ESM "backup and recovery"
  /// function). When off, no log file is kept and transactions are unavailable.
  bool enable_wal = true;
  /// Worker threads for intra-query parallelism. 0 = hardware_concurrency,
  /// 1 = serial execution (the exact pre-parallelism behavior). Can be changed
  /// per-query later through Executor::set_threads.
  size_t exec_threads = 0;
  OptimizerOptions optimizer;
};

/// Result of executing one MOODSQL statement.
struct ExecResult {
  enum class Kind { kQuery, kDdl, kDml };
  Kind kind = Kind::kDdl;
  QueryResult query;     ///< kQuery
  std::string message;   ///< DDL/DML summary
  Oid created_oid;       ///< NEW statements
  size_t affected = 0;   ///< UPDATE/DELETE row counts
};

/// The MOOD database facade (Figure 2.1): the MOODSQL interpreter on top of the
/// kernel — catalog management, dynamic function linking, optimization and
/// interpretation of SQL statements — over the local storage substrate that
/// replaces the Exodus Storage Manager.
class Database {
 public:
  Database() = default;
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens (creating if needed) a database. `path` is a file-name prefix: the
  /// data file is `<path>.mood`, the WAL `<path>.wal`. Runs crash recovery when
  /// the log is non-empty.
  Status Open(const std::string& path, const DatabaseOptions& options = {});
  Status Close();
  bool is_open() const { return storage_ != nullptr && storage_->is_open(); }

  // --- SQL surface ---------------------------------------------------------------

  /// Parses and executes one MOODSQL statement.
  Result<ExecResult> Execute(const std::string& sql);
  /// Executes a ';'-separated script; returns the last statement's result.
  Result<ExecResult> ExecuteScript(const std::string& sql);
  /// Convenience: SELECT statements only.
  Result<QueryResult> Query(const std::string& sql);
  /// Optimizer dictionaries + chosen plan, without executing.
  Result<std::string> Explain(const std::string& sql);
  /// Full optimizer output (for benches asserting on plan shapes).
  Result<QueryOptimizer::Optimized> OptimizeOnly(const std::string& sql);

  // --- Methods (Function Manager) --------------------------------------------------

  /// Registers a compiled method body; declares the method if absent.
  Status RegisterMethod(const std::string& class_name, const MoodsFunction& decl,
                        NativeFunction body);

  // --- Transactions ----------------------------------------------------------------

  /// Begins a transaction. While active, DML through Execute() is logged and can
  /// be rolled back. (One active transaction per Database handle.)
  Result<Transaction*> Begin();
  Status Commit();
  Status Abort();
  bool in_transaction() const { return active_txn_ != nullptr; }

  /// Flushes all pages and truncates the log.
  Status Checkpoint();

  // --- Statistics -------------------------------------------------------------------

  /// Scans a class extent and refreshes the optimizer statistics (Table 8).
  Status CollectStatistics(const std::string& class_name);
  Status CollectAllStatistics();

  // --- Component access ---------------------------------------------------------------

  Catalog* catalog() { return catalog_.get(); }
  ObjectManager* objects() { return objects_.get(); }
  FunctionManager* functions() { return functions_.get(); }
  StatisticsManager* stats() { return stats_.get(); }
  StorageManager* storage() { return storage_.get(); }
  Evaluator* evaluator() { return evaluator_.get(); }
  MoodAlgebra* algebra() { return algebra_.get(); }
  Executor* executor() { return executor_.get(); }
  QueryOptimizer* optimizer() { return optimizer_.get(); }
  SchemaBrowser* schema_browser() { return schema_browser_.get(); }
  ObjectBrowser* object_browser() { return object_browser_.get(); }
  LogManager* log() { return log_.get(); }
  TransactionManager* txn_manager() { return txn_manager_.get(); }

  /// MoodView-style query session bound to this database.
  std::unique_ptr<QueryManager> MakeQuerySession();

 private:
  Result<ExecResult> ExecuteStatement(const Statement& stmt);
  Result<ExecResult> ExecSelect(const SelectStmt& stmt);
  Result<ExecResult> ExecCreateClass(const CreateClassStmt& stmt);
  Result<ExecResult> ExecNew(const NewObjectStmt& stmt);
  Result<ExecResult> ExecUpdate(const UpdateStmt& stmt);
  Result<ExecResult> ExecDelete(const DeleteStmt& stmt);
  Result<ExecResult> ExecCreateIndex(const CreateIndexStmt& stmt);
  Result<ExecResult> ExecDropClass(const DropClassStmt& stmt);

  /// Evaluates the rows a WHERE clause selects for UPDATE/DELETE.
  Result<std::vector<Oid>> MatchingObjects(const std::string& class_name,
                                           const std::string& var, const ExprPtr& where);

  /// The interpreted fallback: evaluates `return <expr>;` method bodies with
  /// identifiers bound to receiver attributes and parameters.
  Result<MoodValue> InterpretMethodBody(const std::string& class_name,
                                        const MoodsFunction& decl,
                                        const MethodContext& ctx,
                                        const std::vector<MoodValue>& args);

  PageWriteLogger* wal_for_writes() { return active_txn_; }

  DatabaseOptions options_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TransactionManager> txn_manager_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<ObjectManager> objects_;
  std::unique_ptr<FunctionManager> functions_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<MoodAlgebra> algebra_;
  std::unique_ptr<StatisticsManager> stats_;
  std::unique_ptr<QueryOptimizer> optimizer_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<SchemaBrowser> schema_browser_;
  std::unique_ptr<ObjectBrowser> object_browser_;
  Transaction* active_txn_ = nullptr;
};

}  // namespace mood
