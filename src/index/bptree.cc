#include "index/bptree.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace mood {

namespace {
constexpr uint32_t kMetaMagic = 0xB7EEB7EE;
}

size_t BPlusTree::Node::SerializedSize() const {
  size_t sz = 8 + 1 + 2 + 4;  // lsn, leaf flag, count, next
  if (leaf) {
    for (size_t i = 0; i < keys.size(); i++) sz += 2 + keys[i].size() + 8;
  } else {
    sz += 4;  // child0
    for (size_t i = 0; i < keys.size(); i++) sz += 2 + keys[i].size() + 4;
  }
  return sz;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(BufferPool* pool,
                                                     FileDirectory* alloc,
                                                     bool unique) {
  MOOD_ASSIGN_OR_RETURN(Page* meta_pg, pool->NewPage());
  PageId meta_id = meta_pg->page_id();
  MOOD_RETURN_IF_ERROR(pool->UnpinPage(meta_id, true));

  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pool, alloc, meta_id));
  // Empty root leaf.
  MOOD_ASSIGN_OR_RETURN(PageId root_id, tree->NewNodePage());
  Node root;
  root.id = root_id;
  root.leaf = true;
  MOOD_RETURN_IF_ERROR(tree->StoreNode(root));

  tree->meta_.root = root_id;
  tree->meta_.first_leaf = root_id;
  tree->meta_.unique = unique;
  tree->meta_.levels = 1;
  tree->meta_.leaves = 1;
  MOOD_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(BufferPool* pool,
                                                   FileDirectory* alloc,
                                                   PageId meta_page) {
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(pool, alloc, meta_page));
  MOOD_RETURN_IF_ERROR(tree->LoadMeta());
  return tree;
}

Status BPlusTree::LoadMeta() {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(meta_page_));
  PageGuard guard(pool_, page);
  const char* p = page->data();
  if (DecodeFixed32(p + 8) != kMetaMagic) {
    return Status::Corruption("not a B+-tree meta page");
  }
  meta_.root = DecodeFixed32(p + 12);
  meta_.first_leaf = DecodeFixed32(p + 16);
  meta_.unique = p[20] != 0;
  meta_.levels = DecodeFixed32(p + 21);
  meta_.leaves = DecodeFixed64(p + 25);
  meta_.entries = DecodeFixed64(p + 33);
  meta_.key_bytes = DecodeFixed64(p + 41);
  meta_.max_fanout = DecodeFixed32(p + 49);
  return Status::OK();
}

Status BPlusTree::StoreMeta() const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(meta_page_));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  char* p = page->data();
  EncodeFixed64(p, kInvalidLsn);
  EncodeFixed32(p + 8, kMetaMagic);
  EncodeFixed32(p + 12, meta_.root);
  EncodeFixed32(p + 16, meta_.first_leaf);
  p[20] = meta_.unique ? 1 : 0;
  EncodeFixed32(p + 21, meta_.levels);
  EncodeFixed64(p + 25, meta_.leaves);
  EncodeFixed64(p + 33, meta_.entries);
  EncodeFixed64(p + 41, meta_.key_bytes);
  EncodeFixed32(p + 49, meta_.max_fanout);
  return Status::OK();
}

Result<PageId> BPlusTree::NewNodePage() const { return alloc_->AllocatePage(); }

Result<BPlusTree::Node> BPlusTree::LoadNode(PageId id) const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(id));
  PageGuard guard(pool_, page);
  const char* p = page->data();
  Node node;
  node.id = id;
  node.leaf = p[8] != 0;
  uint16_t count = DecodeFixed16(p + 9);
  node.next = DecodeFixed32(p + 11);
  size_t off = 15;
  auto read_key = [&]() {
    uint16_t klen = DecodeFixed16(p + off);
    off += 2;
    std::string key(p + off, klen);
    off += klen;
    return key;
  };
  if (node.leaf) {
    node.keys.reserve(count);
    node.values.reserve(count);
    for (uint16_t i = 0; i < count; i++) {
      node.keys.push_back(read_key());
      node.values.push_back(DecodeFixed64(p + off));
      off += 8;
    }
  } else {
    node.children.reserve(count + 1);
    node.children.push_back(DecodeFixed32(p + off));
    off += 4;
    for (uint16_t i = 0; i < count; i++) {
      node.keys.push_back(read_key());
      node.children.push_back(DecodeFixed32(p + off));
      off += 4;
    }
  }
  if (off > kPageSize) return Status::Corruption("B+-tree node overruns page");
  return node;
}

Status BPlusTree::StoreNode(const Node& node) const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(node.id));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  char* p = page->data();
  std::memset(p, 0, kPageSize);
  EncodeFixed64(p, kInvalidLsn);
  p[8] = node.leaf ? 1 : 0;
  EncodeFixed16(p + 9, static_cast<uint16_t>(node.keys.size()));
  EncodeFixed32(p + 11, node.next);
  size_t off = 15;
  auto write_key = [&](const std::string& key) {
    EncodeFixed16(p + off, static_cast<uint16_t>(key.size()));
    off += 2;
    std::memcpy(p + off, key.data(), key.size());
    off += key.size();
  };
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size(); i++) {
      write_key(node.keys[i]);
      EncodeFixed64(p + off, node.values[i]);
      off += 8;
    }
  } else {
    EncodeFixed32(p + off, node.children[0]);
    off += 4;
    for (size_t i = 0; i < node.keys.size(); i++) {
      write_key(node.keys[i]);
      EncodeFixed32(p + off, node.children[i + 1]);
      off += 4;
    }
  }
  if (off > kPageSize) return Status::Internal("B+-tree node too large to store");
  return Status::OK();
}

Result<BPlusTree::InsertResult> BPlusTree::InsertRec(PageId page_id, Slice key,
                                                     uint64_t value) {
  MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(page_id));
  if (node.leaf) {
    // Position by (key, value) so duplicate keys stay ordered deterministically.
    size_t pos = 0;
    while (pos < node.keys.size()) {
      int c = Slice(node.keys[pos]).compare(key);
      if (c > 0) break;
      if (c == 0) {
        if (meta_.unique) {
          return Status::AlreadyExists("duplicate key in unique index");
        }
        if (node.values[pos] >= value) break;
      }
      pos++;
    }
    node.keys.insert(node.keys.begin() + pos, key.ToString());
    node.values.insert(node.values.begin() + pos, value);
    meta_.entries++;
    meta_.key_bytes += key.size();
    meta_.max_fanout = std::max<uint32_t>(meta_.max_fanout,
                                          static_cast<uint32_t>(node.keys.size()));
    if (node.SerializedSize() <= kNodeCapacity) {
      MOOD_RETURN_IF_ERROR(StoreNode(node));
      return InsertResult{};
    }
    // Split the leaf.
    size_t mid = node.keys.size() / 2;
    Node right;
    MOOD_ASSIGN_OR_RETURN(right.id, NewNodePage());
    right.leaf = true;
    right.next = node.next;
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    right.values.assign(node.values.begin() + mid, node.values.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    node.next = right.id;
    MOOD_RETURN_IF_ERROR(StoreNode(node));
    MOOD_RETURN_IF_ERROR(StoreNode(right));
    meta_.leaves++;
    InsertResult res;
    res.split = true;
    res.split_key = right.keys.front();
    res.new_page = right.id;
    return res;
  }

  // Internal node: find child. Strict comparison keeps duplicate keys reachable
  // from the leftmost candidate leaf.
  size_t child_idx = 0;
  while (child_idx < node.keys.size() && Slice(node.keys[child_idx]).compare(key) < 0) {
    child_idx++;
  }
  MOOD_ASSIGN_OR_RETURN(InsertResult child_res,
                        InsertRec(node.children[child_idx], key, value));
  if (!child_res.split) return InsertResult{};
  node.keys.insert(node.keys.begin() + child_idx, child_res.split_key);
  node.children.insert(node.children.begin() + child_idx + 1, child_res.new_page);
  meta_.max_fanout = std::max<uint32_t>(meta_.max_fanout,
                                        static_cast<uint32_t>(node.children.size()));
  if (node.SerializedSize() <= kNodeCapacity) {
    MOOD_RETURN_IF_ERROR(StoreNode(node));
    return InsertResult{};
  }
  // Split the internal node: middle key moves up.
  size_t mid = node.keys.size() / 2;
  std::string up_key = node.keys[mid];
  Node right;
  MOOD_ASSIGN_OR_RETURN(right.id, NewNodePage());
  right.leaf = false;
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1, node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  MOOD_RETURN_IF_ERROR(StoreNode(node));
  MOOD_RETURN_IF_ERROR(StoreNode(right));
  InsertResult res;
  res.split = true;
  res.split_key = std::move(up_key);
  res.new_page = right.id;
  return res;
}

Status BPlusTree::Insert(Slice key, uint64_t value) {
  MOOD_ASSIGN_OR_RETURN(InsertResult res, InsertRec(meta_.root, key, value));
  if (res.split) {
    Node new_root;
    MOOD_ASSIGN_OR_RETURN(new_root.id, NewNodePage());
    new_root.leaf = false;
    new_root.keys.push_back(res.split_key);
    new_root.children.push_back(meta_.root);
    new_root.children.push_back(res.new_page);
    MOOD_RETURN_IF_ERROR(StoreNode(new_root));
    meta_.root = new_root.id;
    meta_.levels++;
  }
  return StoreMeta();
}

Status BPlusTree::Delete(Slice key, uint64_t value) {
  // Descend to the leaf that could hold (key, value).
  PageId page_id = meta_.root;
  for (;;) {
    MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(page_id));
    if (!node.leaf) {
      size_t child_idx = 0;
      while (child_idx < node.keys.size() &&
             Slice(node.keys[child_idx]).compare(key) < 0) {
        child_idx++;
      }
      page_id = node.children[child_idx];
      continue;
    }
    // Duplicates may spill over leaf boundaries; walk the chain while keys match.
    Node leaf = std::move(node);
    for (;;) {
      for (size_t i = 0; i < leaf.keys.size(); i++) {
        int c = Slice(leaf.keys[i]).compare(key);
        if (c > 0) return Status::NotFound("key/value pair not in index");
        if (c == 0 && leaf.values[i] == value) {
          meta_.key_bytes -= leaf.keys[i].size();
          leaf.keys.erase(leaf.keys.begin() + i);
          leaf.values.erase(leaf.values.begin() + i);
          meta_.entries--;
          MOOD_RETURN_IF_ERROR(StoreNode(leaf));
          return StoreMeta();
        }
      }
      if (leaf.next == kInvalidPageId) return Status::NotFound("key/value pair not in index");
      MOOD_ASSIGN_OR_RETURN(leaf, LoadNode(leaf.next));
    }
  }
}

Result<std::vector<uint64_t>> BPlusTree::SearchEqual(Slice key) const {
  std::vector<uint64_t> out;
  std::string k = key.ToString();
  MOOD_RETURN_IF_ERROR(Scan(&k, &k, [&](Slice, uint64_t v) {
    out.push_back(v);
    return Status::OK();
  }));
  return out;
}

Status BPlusTree::Scan(const std::string* lo, const std::string* hi,
                       const std::function<Status(Slice, uint64_t)>& fn) const {
  // Descend to the first leaf that can contain `lo` (leftmost leaf when
  // unbounded below).
  PageId page_id = meta_.root;
  for (;;) {
    MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(page_id));
    if (node.leaf) {
      Node leaf = std::move(node);
      for (;;) {
        for (size_t i = 0; i < leaf.keys.size(); i++) {
          Slice k(leaf.keys[i]);
          if (lo != nullptr && k.compare(Slice(*lo)) < 0) continue;
          if (hi != nullptr && k.compare(Slice(*hi)) > 0) return Status::OK();
          MOOD_RETURN_IF_ERROR(fn(k, leaf.values[i]));
        }
        if (leaf.next == kInvalidPageId) return Status::OK();
        MOOD_ASSIGN_OR_RETURN(leaf, LoadNode(leaf.next));
      }
    }
    size_t child_idx = 0;
    if (lo != nullptr) {
      while (child_idx < node.keys.size() &&
             Slice(node.keys[child_idx]).compare(Slice(*lo)) < 0) {
        child_idx++;
      }
    }
    page_id = node.children[child_idx];
  }
}

BPlusTreeStats BPlusTree::stats() const {
  BPlusTreeStats s;
  s.levels = meta_.levels;
  s.leaves = meta_.leaves;
  s.unique = meta_.unique;
  s.entries = meta_.entries;
  s.order = meta_.max_fanout;
  s.keysize = meta_.entries == 0
                  ? 0
                  : static_cast<uint32_t>(meta_.key_bytes / meta_.entries);
  return s;
}

Result<uint64_t> BPlusTree::CountLeaves() const {
  uint64_t count = 0;
  PageId id = meta_.first_leaf;
  while (id != kInvalidPageId) {
    MOOD_ASSIGN_OR_RETURN(Node node, LoadNode(id));
    count++;
    id = node.next;
  }
  return count;
}

}  // namespace mood
