#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "types/value.h"

namespace mood {

/// Run-time type codes of the MOODSQL expression interpreter (Section 2 of the
/// paper names INT16, INT32 and DOUBLE; the full set covers the MOOD basic types).
enum class DataTypeCode : uint8_t {
  kInt16,
  kInt32,
  kInt64,
  kFloat32,
  kDouble,
  kChar,
  kBool,
  kString,
};

std::string_view DataTypeCodeName(DataTypeCode c);

/// The paper's `OperandDataType`: a run-time-typed operand for interpreting
/// arithmetic and Boolean expressions inside the MOODSQL interpreter.
///
///   OperandDataType x(DataTypeCode::kInt16), y(DataTypeCode::kInt32),
///                   z(DataTypeCode::kDouble);
///   x = 10; y = 13;
///   z = (x * 3 + x % 3) * (y / 4 * 5);   // evaluated at run time; the result is
///                                        // cast to double because z is double
///
/// Overloads +, -, *, /, % (in the paper's order), the comparison operators and
/// AND/OR/NOT. Type checking and conversion happen at run time; a type error
/// poisons the value and propagates through the rest of the expression, surfacing
/// via status().
class OperandDataType {
 public:
  explicit OperandDataType(DataTypeCode code);
  OperandDataType(DataTypeCode code, const MoodValue& v);

  /// Builds an operand from a runtime MOOD value (used by the query executor when
  /// feeding attribute values into WHERE-clause expressions).
  static OperandDataType FromValue(const MoodValue& v);

  DataTypeCode code() const { return code_; }
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Assignment converts to the declared type of the target (run-time cast).
  OperandDataType& operator=(int64_t v);
  OperandDataType& operator=(double v);
  OperandDataType& operator=(bool v);
  OperandDataType& operator=(const std::string& v);
  OperandDataType& operator=(const char* v) { return *this = std::string(v); }
  /// Keeps this operand's declared type and casts the value of `rhs` into it.
  OperandDataType& Assign(const OperandDataType& rhs);

  // Arithmetic (+, -, *, /, % in the paper's order). Integer operands use integer
  // division/modulo; any floating operand promotes the expression to double.
  friend OperandDataType operator+(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator-(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator*(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator/(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator%(const OperandDataType& a, const OperandDataType& b);
  OperandDataType operator-() const;

  // Comparisons return a kBool operand.
  friend OperandDataType operator==(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator!=(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator<(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator<=(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator>(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator>=(const OperandDataType& a, const OperandDataType& b);

  // Boolean connectives (non-short-circuiting: both sides are already values).
  friend OperandDataType operator&&(const OperandDataType& a, const OperandDataType& b);
  friend OperandDataType operator||(const OperandDataType& a, const OperandDataType& b);
  OperandDataType operator!() const;

  /// Extractors; fail if the operand is poisoned or of the wrong family.
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;
  Result<bool> AsBool() const;
  Result<std::string> AsStringValue() const;

  /// Converts back into a MOOD runtime value.
  Result<MoodValue> ToValue() const;

  std::string ToString() const;

  /// Builds a poisoned operand carrying a type/evaluation error (public so the
  /// expression evaluator can inject errors, e.g. unknown identifiers).
  static OperandDataType Poison(Status st);

  static bool IsIntCode(DataTypeCode c) {
    return c == DataTypeCode::kInt16 || c == DataTypeCode::kInt32 ||
           c == DataTypeCode::kInt64 || c == DataTypeCode::kChar;
  }
  static bool IsFloatCode(DataTypeCode c) {
    return c == DataTypeCode::kFloat32 || c == DataTypeCode::kDouble;
  }
  static bool IsNumericCode(DataTypeCode c) { return IsIntCode(c) || IsFloatCode(c); }
  /// Result code of a binary arithmetic op under numeric promotion.
  static DataTypeCode Promote(DataTypeCode a, DataTypeCode b);

 private:
  /// Truncates an int64 into the range of `code`.
  static int64_t TruncateInt(DataTypeCode code, int64_t v);

  enum class Repr : uint8_t { kNone, kInt, kFloat, kBool, kString };

  DataTypeCode code_;
  Repr repr_ = Repr::kNone;
  int64_t int_ = 0;
  double float_ = 0;
  bool bool_ = false;
  std::string string_;
  Status status_;
};

}  // namespace mood
