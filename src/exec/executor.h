#pragma once

#include <string>
#include <vector>

#include "algebra/operators.h"
#include "objects/object_manager.h"
#include "optimizer/optimizer.h"
#include "sql/evaluator.h"

namespace mood {

/// Intermediate result: rows of range-variable bindings.
struct RowSet {
  std::vector<std::string> vars;
  std::vector<std::vector<Oid>> rows;

  int VarIndex(const std::string& var) const {
    for (size_t i = 0; i < vars.size(); i++) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Final query result: named columns of values.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<MoodValue>> rows;

  /// Aligned-table rendering (at most `limit` rows; 0 = all).
  std::string ToString(size_t limit = 0) const;
};

/// Executes physical plans produced by the optimizer, then applies the clause
/// pipeline of Figure 7.1: FROM -> WHERE -> GROUP BY -> HAVING -> SELECT
/// (projection) -> ORDER BY.
///
/// With threads() > 1 the operators use morsel-driven intra-query parallelism:
/// extent scans partition into extent pages, filters and join probe sides into
/// fixed-size row morsels, and index selections into per-probe tasks. Partial
/// results are merged in morsel order, so the produced RowSet is byte-identical
/// to serial execution (the determinism property parallel_exec_test asserts).
/// Only read paths run concurrently; the kernel structures underneath
/// (BufferPool, HeapFile/BpTree reads, FunctionManager invocation) are
/// concurrent-read safe, while Catalog/ObjectManager schema state must not be
/// mutated during a query (see DESIGN.md "Parallel query execution").
class Executor {
 public:
  Executor(ObjectManager* objects, Evaluator* evaluator, MoodAlgebra* algebra)
      : objects_(objects), evaluator_(evaluator), algebra_(algebra) {}

  /// Worker threads for query execution; 1 (the default) reproduces the serial
  /// executor exactly, including its error behavior.
  void set_threads(size_t threads) { threads_ = threads == 0 ? 1 : threads; }
  size_t threads() const { return threads_; }

  /// Capacity of the per-query Deref cache (entries); 0 disables it. One cache
  /// instance lives for the duration of each ExecutePlan/ExecuteSelect call and
  /// is shared by all of that query's morsel workers.
  void set_deref_cache_capacity(size_t entries) { deref_cache_capacity_ = entries; }
  size_t deref_cache_capacity() const { return deref_cache_capacity_; }

  Result<RowSet> ExecutePlan(const PlanPtr& plan) const;

  Result<QueryResult> ExecuteSelect(const QueryOptimizer::Optimized& optimized) const;

  /// Evaluates the clause pipeline over an already-computed row set (used by the
  /// naive executor in bench_query_e2e).
  Result<QueryResult> FinishSelect(const SelectStmt& stmt, RowSet rows) const;

 private:
  Result<RowSet> Exec(const PlanPtr& plan, DerefCache* cache) const;
  Result<RowSet> ExecBind(const PlanNode& node, DerefCache* cache) const;
  Result<RowSet> ExecIndexSelect(const PlanNode& node, DerefCache* cache) const;
  Result<RowSet> ExecFilter(const PlanNode& node, DerefCache* cache) const;
  Result<RowSet> ExecPointerJoin(const PlanNode& node, DerefCache* cache) const;
  Result<RowSet> ExecNestedLoop(const PlanNode& node, DerefCache* cache) const;
  Result<RowSet> ExecUnion(const PlanNode& node, DerefCache* cache) const;

  Result<QueryResult> Finish(const SelectStmt& stmt, RowSet rows, DerefCache* cache) const;

  Evaluator::Env EnvOf(const RowSet& rs, const std::vector<Oid>& row,
                       DerefCache* cache) const;

  /// Chases a reference path from an object, invoking `fn` for every reached
  /// object identifier (fan-out through set/list-valued reference attributes).
  Status ChaseRefs(Oid from, const std::vector<std::string>& path, DerefCache* cache,
                   const std::function<Status(Oid)>& fn) const;

  ObjectManager* objects_;
  Evaluator* evaluator_;
  MoodAlgebra* algebra_;
  size_t threads_ = 1;
  size_t deref_cache_capacity_ = 4096;
};

}  // namespace mood
