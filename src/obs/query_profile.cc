#include "obs/query_profile.h"

#include <cstdio>

namespace mood {

QueryProfile* QueryProfile::AddChild(std::string child_label) {
  children.push_back(std::make_unique<QueryProfile>());
  children.back()->label = std::move(child_label);
  return children.back().get();
}

uint64_t QueryProfile::ChildWallNs() const {
  uint64_t total = 0;
  for (const auto& c : children) total += c->wall_ns;
  return total;
}

std::string QueryProfile::Render(const RenderOptions& options) const {
  std::string out(static_cast<size_t>(options.indent) * 2, ' ');
  out += label;
  char buf[160];
  if (has_estimates) {
    std::snprintf(buf, sizeof(buf), "  (est rows=%.2f cost=%.3f)", est_rows, est_cost);
    out += buf;
  }
  // `batches` appears only in batch mode, so row-at-a-time renderings are
  // byte-identical to what they were before batch execution existed.
  if (batches > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  (actual rows=%llu in=%llu morsels=%llu batches=%llu)",
                  static_cast<unsigned long long>(rows_out),
                  static_cast<unsigned long long>(rows_in),
                  static_cast<unsigned long long>(morsels),
                  static_cast<unsigned long long>(batches));
  } else {
    std::snprintf(buf, sizeof(buf), "  (actual rows=%llu in=%llu morsels=%llu)",
                  static_cast<unsigned long long>(rows_out),
                  static_cast<unsigned long long>(rows_in),
                  static_cast<unsigned long long>(morsels));
  }
  out += buf;
  if (has_estimates && est_rows > 0 && rows_out > 0) {
    double actual = static_cast<double>(rows_out);
    double q = est_rows > actual ? est_rows / actual : actual / est_rows;
    std::snprintf(buf, sizeof(buf), "  [q=%.2f]", q);
    out += buf;
  }
  if (options.timing) {
    std::snprintf(buf, sizeof(buf), "  [time=%.3fms]",
                  static_cast<double>(wall_ns) / 1e6);
    out += buf;
  }
  if (options.buffer) {
    std::snprintf(buf, sizeof(buf),
                  "  [pool hits=%llu misses=%llu evictions=%llu prefetches=%llu]",
                  static_cast<unsigned long long>(pool.hits),
                  static_cast<unsigned long long>(pool.misses),
                  static_cast<unsigned long long>(pool.evictions),
                  static_cast<unsigned long long>(pool.prefetches));
    out += buf;
  }
  out += '\n';
  RenderOptions child_options = options;
  child_options.indent++;
  for (const auto& c : children) out += c->Render(child_options);
  return out;
}

namespace {
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}
}  // namespace

std::string QueryProfile::ToJson(const RenderOptions& options) const {
  std::string out = "{\"label\":";
  AppendJsonString(&out, label);
  char buf[96];
  if (has_estimates) {
    std::snprintf(buf, sizeof(buf), ",\"est_rows\":%.2f,\"est_cost\":%.3f", est_rows,
                  est_cost);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"rows_out\":%llu,\"rows_in\":%llu,\"morsels\":%llu",
                static_cast<unsigned long long>(rows_out),
                static_cast<unsigned long long>(rows_in),
                static_cast<unsigned long long>(morsels));
  out += buf;
  if (batches > 0) {
    std::snprintf(buf, sizeof(buf), ",\"batches\":%llu",
                  static_cast<unsigned long long>(batches));
    out += buf;
  }
  if (options.timing) {
    std::snprintf(buf, sizeof(buf), ",\"time_ms\":%.3f",
                  static_cast<double>(wall_ns) / 1e6);
    out += buf;
  }
  if (options.buffer) {
    std::snprintf(buf, sizeof(buf),
                  ",\"pool\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
                  "\"prefetches\":%llu}",
                  static_cast<unsigned long long>(pool.hits),
                  static_cast<unsigned long long>(pool.misses),
                  static_cast<unsigned long long>(pool.evictions),
                  static_cast<unsigned long long>(pool.prefetches));
    out += buf;
  }
  if (!children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); i++) {
      if (i > 0) out += ',';
      out += children[i]->ToJson(options);
    }
    out += ']';
  }
  out += '}';
  return out;
}

}  // namespace mood
