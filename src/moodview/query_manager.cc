#include "moodview/query_manager.h"

namespace mood {

Result<QueryResult> QueryManager::Run(const std::string& sql) {
  HistoryEntry entry;
  entry.sql = sql;
  auto result = execute_(sql);
  entry.succeeded = result.ok();
  if (result.ok()) {
    entry.result_rows = result.value().rows.size();
    last_result_ = result.value();
  }
  history_.push_back(std::move(entry));
  return result;
}

Result<QueryResult> QueryManager::Rerun(size_t index) {
  if (index >= history_.size()) {
    return Status::InvalidArgument("no history entry " + std::to_string(index));
  }
  return Run(history_[index].sql);
}

std::string QueryManager::RenderHistory() const {
  std::string out = "=== Query Manager History ===\n";
  for (size_t i = 0; i < history_.size(); i++) {
    out += std::to_string(i) + ": [" + (history_[i].succeeded ? "ok" : "ERR") + "] " +
           history_[i].sql + " (" + std::to_string(history_[i].result_rows) +
           " rows)\n";
  }
  return out;
}

}  // namespace mood
