#include "algebra/operators.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "index/key_codec.h"

namespace mood {

std::string_view JoinMethodName(JoinMethod m) {
  switch (m) {
    case JoinMethod::kForwardTraversal: return "FORWARD_TRAVERSAL";
    case JoinMethod::kIndexed: return "INDEXED";
    case JoinMethod::kBackwardTraversal: return "BACKWARD_TRAVERSAL";
    case JoinMethod::kHashPartition: return "HASH_PARTITION";
    case JoinMethod::kNestedLoop: return "NESTED_LOOP";
  }
  return "?";
}

// --- Typing rules (Tables 1-7) --------------------------------------------------

CollKind SelectReturnKind(CollKind arg, bool as_set) {
  switch (arg) {
    case CollKind::kExtent: return as_set ? CollKind::kSet : CollKind::kExtent;
    case CollKind::kSet: return CollKind::kSet;
    case CollKind::kList: return CollKind::kList;
    case CollKind::kNamedObject: return CollKind::kNamedObject;
  }
  return arg;
}

CollKind JoinReturnKind(CollKind arg1, CollKind arg2) {
  // Table 2: Extent dominates, then Set, then List; two named objects join to an
  // object.
  auto rank = [](CollKind k) {
    switch (k) {
      case CollKind::kExtent: return 3;
      case CollKind::kSet: return 2;
      case CollKind::kList: return 1;
      case CollKind::kNamedObject: return 0;
    }
    return 0;
  };
  return rank(arg1) >= rank(arg2) ? arg1 : arg2;
}

std::optional<std::string> DupElimReturn(CollKind arg) {
  switch (arg) {
    case CollKind::kSet:
      return std::nullopt;  // not applicable: a set is duplicate-free
    case CollKind::kList:
      return "list of ordered distinct object identifiers";
    case CollKind::kExtent:
      return "Extent of the distinct objects according to the deep equality check";
    case CollKind::kNamedObject:
      return std::nullopt;
  }
  return std::nullopt;
}

Result<CollKind> SetOpReturnKind(CollKind arg1, CollKind arg2) {
  auto ok = [](CollKind k) { return k == CollKind::kSet || k == CollKind::kList; };
  if (!ok(arg1) || !ok(arg2)) {
    return Status::InvalidArgument(
        "Union/Intersection/Difference take Set or List arguments");
  }
  if (arg1 == CollKind::kList && arg2 == CollKind::kList) return CollKind::kList;
  return CollKind::kSet;
}

std::string AsSetListElements(CollKind arg) {
  switch (arg) {
    case CollKind::kExtent:
      return "Object identifiers of the objects in the extent arg";
    case CollKind::kSet:
      return "Object identifiers of the set arg";
    case CollKind::kList:
      return "Object identifiers of the list arg";
    case CollKind::kNamedObject:
      return "Object identifiers of the named object";
  }
  return "";
}

Result<std::string> AsExtentReturn(CollKind arg) {
  if (arg == CollKind::kSet || arg == CollKind::kList) {
    return std::string("extent of dereferenced objects of the elements of the ") +
           (arg == CollKind::kSet ? "set" : "list");
  }
  return Status::InvalidArgument("asExtent takes a Set or List argument");
}

bool UnnestAccepts(CollKind arg, bool tuple_object) {
  if (tuple_object) return true;  // "A tuple type object"
  return arg == CollKind::kExtent || arg == CollKind::kSet || arg == CollKind::kList;
}

// --- Operator implementations ----------------------------------------------------

Result<TypeId> MoodAlgebra::TypeIdOf(Oid o) const {
  MOOD_ASSIGN_OR_RETURN(std::string cls, objects_->ClassOf(o));
  return objects_->catalog()->typeId(cls);
}

Result<std::string> MoodAlgebra::IsA(const std::string& path) const {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= path.size()) {
    size_t dot = path.find('.', start);
    if (dot == std::string::npos) {
      parts.push_back(path.substr(start));
      break;
    }
    parts.push_back(path.substr(start, dot - start));
    start = dot + 1;
  }
  if (parts.empty()) return Status::InvalidArgument("empty path");
  std::string cls = parts[0];
  MOOD_RETURN_IF_ERROR(objects_->catalog()->Lookup(cls).status());
  for (size_t i = 1; i < parts.size(); i++) {
    MOOD_ASSIGN_OR_RETURN(auto attrs, objects_->catalog()->AllAttributes(cls));
    const MoodsAttribute* found = nullptr;
    for (const auto& a : attrs) {
      if (a.name == parts[i]) {
        found = &a;
        break;
      }
    }
    if (found == nullptr) {
      return Status::CatalogError("class '" + cls + "' has no attribute '" + parts[i] +
                                  "'");
    }
    TypeDescPtr t = found->type;
    if (t->kind() == ConstructorKind::kSet || t->kind() == ConstructorKind::kList) {
      t = t->element();
    }
    if (t->kind() == ConstructorKind::kReference) {
      cls = t->referenced_class();
    } else if (i + 1 == parts.size()) {
      return cls;  // atomic terminal: class of the last attribute
    } else {
      return Status::CatalogError("path continues past atomic attribute '" + parts[i] +
                                  "'");
    }
  }
  return cls;
}

Status MoodAlgebra::Bind(Collection arg, const std::string& name) {
  session_names_[name] = std::move(arg);
  return Status::OK();
}

Result<Collection> MoodAlgebra::Named(const std::string& name) const {
  auto it = session_names_.find(name);
  if (it == session_names_.end()) {
    return Status::NotFound("no bound collection '" + name + "'");
  }
  return it->second;
}

Result<Collection> MoodAlgebra::BindClass(const std::string& class_name,
                                          bool with_subclasses,
                                          const std::vector<std::string>& excludes) const {
  std::vector<Oid> oids;
  MOOD_RETURN_IF_ERROR(objects_->ScanExtent(class_name, with_subclasses, excludes,
                                            [&](Oid oid, const MoodValue&) {
                                              oids.push_back(oid);
                                              return Status::OK();
                                            }));
  return Collection::Extent(class_name, std::move(oids));
}

Result<MoodValue> MoodAlgebra::ElementValue(const Collection& coll, size_t i) const {
  if (coll.materialized()) return coll.values()[i];
  return objects_->Fetch(coll.oids()[i]);
}

Result<Collection> MoodAlgebra::Select(const Collection& arg, const ExprPtr& pred,
                                       const std::string& var,
                                       bool extent_as_set) const {
  if (arg.materialized()) {
    return Status::NotSupported("Select over materialized value extents");
  }
  std::vector<Oid> kept;
  for (Oid oid : arg.oids()) {
    Evaluator::Env env;
    env.vars[var] = oid;
    MOOD_ASSIGN_OR_RETURN(bool keep, evaluator_->EvalPredicate(pred, env));
    if (keep) kept.push_back(oid);
  }
  CollKind out = SelectReturnKind(arg.kind(), extent_as_set);
  switch (out) {
    case CollKind::kExtent: return Collection::Extent(arg.class_name(), std::move(kept));
    case CollKind::kSet: return Collection::Set(std::move(kept));
    case CollKind::kList: return Collection::List(std::move(kept));
    case CollKind::kNamedObject:
      return kept.empty() ? Collection::NamedObject(arg.object_name(), kNullOid)
                          : Collection::NamedObject(arg.object_name(), kept[0]);
  }
  return Status::Internal("unhandled collection kind");
}

Result<Collection> MoodAlgebra::IndSel(const std::string& class_name,
                                       const IndexDesc& index, BinaryOp op,
                                       const MoodValue& constant) const {
  std::vector<Oid> oids;
  std::string key = MakeIndexKey(constant);
  if (index.kind == IndexKind::kHash) {
    if (op != BinaryOp::kEq) {
      return Status::InvalidArgument("hash index supports only equality");
    }
    MOOD_ASSIGN_OR_RETURN(HashIndex * hash, objects_->OpenHash(index));
    MOOD_ASSIGN_OR_RETURN(auto packed, hash->SearchEqual(key));
    for (uint64_t v : packed) oids.push_back(Oid::Unpack(v));
    return Collection::Set(std::move(oids));
  }
  if (index.kind != IndexKind::kBTree) {
    return Status::InvalidArgument("IndSel requires a B+-tree or hash index");
  }
  MOOD_ASSIGN_OR_RETURN(BPlusTree * tree, objects_->OpenBTree(index));
  const std::string* lo = nullptr;
  const std::string* hi = nullptr;
  bool strict_lo = false, strict_hi = false;
  switch (op) {
    case BinaryOp::kEq: lo = &key; hi = &key; break;
    case BinaryOp::kGt: lo = &key; strict_lo = true; break;
    case BinaryOp::kGe: lo = &key; break;
    case BinaryOp::kLt: hi = &key; strict_hi = true; break;
    case BinaryOp::kLe: hi = &key; break;
    default:
      return Status::InvalidArgument("IndSel does not support this operator");
  }
  MOOD_RETURN_IF_ERROR(tree->Scan(lo, hi, [&](Slice k, uint64_t v) {
    if (strict_lo && k == Slice(key)) return Status::OK();
    if (strict_hi && k == Slice(key)) return Status::OK();
    oids.push_back(Oid::Unpack(v));
    return Status::OK();
  }));
  (void)class_name;
  return Collection::Set(std::move(oids));
}

Result<Collection> MoodAlgebra::Project(const Collection& arg,
                                        const std::vector<std::string>& attributes) const {
  std::vector<MoodValue> rows;
  rows.reserve(arg.size());
  for (size_t i = 0; i < arg.size(); i++) {
    MoodValue::ValueList fields;
    if (arg.materialized()) {
      return Status::NotSupported("Project over already-projected values");
    }
    Oid oid = arg.oids()[i];
    for (const auto& attr : attributes) {
      MOOD_ASSIGN_OR_RETURN(MoodValue v, objects_->GetAttribute(oid, attr));
      fields.push_back(std::move(v));
    }
    rows.push_back(MoodValue::Tuple(std::move(fields)));
  }
  return Collection::ValueExtent(std::move(rows));
}

Result<Collection> MoodAlgebra::Join(const Collection& arg1, const Collection& arg2,
                                     JoinMethod method, const ExprPtr& pred,
                                     const std::string& var1, const std::string& var2,
                                     const std::string& ref_attr) const {
  if (arg1.materialized() || arg2.materialized()) {
    return Status::NotSupported("Join over materialized value extents");
  }
  CollKind out_kind = JoinReturnKind(arg1.kind(), arg2.kind());
  std::vector<MoodValue> pairs;

  auto emit = [&](Oid left, Oid right) {
    pairs.push_back(MoodValue::Tuple(
        {MoodValue::Reference(left), MoodValue::Reference(right)}));
  };

  const bool pointer_join = !ref_attr.empty() && method != JoinMethod::kNestedLoop;
  if (pointer_join) {
    // Membership structure over the inner collection.
    std::unordered_set<uint64_t> inner;
    inner.reserve(arg2.size());
    for (Oid o : arg2.oids()) inner.insert(o.Pack());

    auto chase = [&](Oid left) -> Status {
      MOOD_ASSIGN_OR_RETURN(MoodValue v, objects_->GetAttribute(left, ref_attr));
      auto probe = [&](const MoodValue& r) {
        if (r.kind() == ValueKind::kReference &&
            inner.count(r.AsReference().Pack()) > 0) {
          emit(left, r.AsReference());
        }
      };
      if (v.kind() == ValueKind::kReference) {
        probe(v);
      } else if (v.IsCollection()) {
        for (const auto& e : v.elements()) probe(e);
      }
      return Status::OK();
    };

    switch (method) {
      case JoinMethod::kForwardTraversal:
      case JoinMethod::kHashPartition:
      case JoinMethod::kBackwardTraversal: {
        // All three produce the same pairs in memory; they differ in the I/O
        // pattern the cost model prices (Section 6). Backward traversal iterates
        // the referencing side too — the stored direction of the scan is what
        // the disk-level bench measures, not this in-memory loop.
        for (Oid left : arg1.oids()) MOOD_RETURN_IF_ERROR(chase(left));
        break;
      }
      case JoinMethod::kIndexed: {
        // Probe a registered binary join index from the inner side.
        auto desc = objects_->catalog()->FindIndex(arg1.class_name(), ref_attr,
                                                   IndexKind::kBinaryJoin);
        if (!desc.has_value()) {
          return Status::NotFound("no binary join index on " + arg1.class_name() +
                                  "." + ref_attr);
        }
        MOOD_ASSIGN_OR_RETURN(BinaryJoinIndex * bji, objects_->OpenJoinIndex(*desc));
        std::unordered_set<uint64_t> outer;
        for (Oid o : arg1.oids()) outer.insert(o.Pack());
        for (Oid right : arg2.oids()) {
          MOOD_ASSIGN_OR_RETURN(auto sources, bji->Sources(right));
          for (Oid left : sources) {
            if (outer.count(left.Pack())) emit(left, right);
          }
        }
        break;
      }
      case JoinMethod::kNestedLoop:
        break;  // unreachable
    }
  } else {
    if (pred == nullptr) {
      return Status::InvalidArgument("nested-loop join requires a predicate");
    }
    for (Oid left : arg1.oids()) {
      for (Oid right : arg2.oids()) {
        Evaluator::Env env;
        env.vars[var1] = left;
        env.vars[var2] = right;
        MOOD_ASSIGN_OR_RETURN(bool match, evaluator_->EvalPredicate(pred, env));
        if (match) emit(left, right);
      }
    }
  }
  if (out_kind == CollKind::kSet) {
    // Set semantics: deduplicate pairs.
    std::vector<MoodValue> dedup;
    for (auto& pv : pairs) {
      bool seen = false;
      for (const auto& d : dedup) {
        if (d.Equals(pv)) {
          seen = true;
          break;
        }
      }
      if (!seen) dedup.push_back(std::move(pv));
    }
    pairs = std::move(dedup);
  }
  return Collection::Pairs(out_kind, std::move(pairs));
}

Result<std::vector<MoodValue>> MoodAlgebra::KeyOf(
    const MoodValue& tuple, const std::string& class_name,
    const std::vector<std::string>& attrs) const {
  MOOD_ASSIGN_OR_RETURN(auto all, objects_->catalog()->AllAttributes(class_name));
  std::vector<MoodValue> key;
  for (const auto& attr : attrs) {
    int idx = -1;
    for (size_t i = 0; i < all.size(); i++) {
      if (all[i].name == attr) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx < 0) {
      return Status::NotFound("class '" + class_name + "' has no attribute '" + attr +
                              "'");
    }
    if (static_cast<size_t>(idx) < tuple.size()) {
      key.push_back(tuple.elements()[static_cast<size_t>(idx)]);
    } else {
      key.push_back(MoodValue::Null());
    }
  }
  return key;
}

Result<std::vector<Collection>> MoodAlgebra::Partition(
    const Collection& arg, const std::vector<std::string>& attributes) const {
  if (arg.materialized()) {
    return Status::NotSupported("Partition over materialized value extents");
  }
  // Group by encoded key.
  std::map<std::string, std::vector<Oid>> groups;
  for (Oid oid : arg.oids()) {
    MOOD_ASSIGN_OR_RETURN(std::string cls, objects_->ClassOf(oid));
    MOOD_ASSIGN_OR_RETURN(MoodValue tuple, objects_->Fetch(oid));
    MOOD_ASSIGN_OR_RETURN(auto key, KeyOf(tuple, cls, attributes));
    std::string enc;
    for (const auto& k : key) k.EncodeTo(&enc);
    groups[enc].push_back(oid);
  }
  std::vector<Collection> out;
  out.reserve(groups.size());
  for (auto& [enc, oids] : groups) {
    out.push_back(Collection::Extent(arg.class_name(), std::move(oids)));
  }
  return out;
}

Result<Collection> MoodAlgebra::Sort(const Collection& arg,
                                     const std::vector<std::string>& attributes,
                                     bool ascending) const {
  if (arg.materialized()) {
    return Status::NotSupported("Sort over materialized value extents");
  }
  struct Keyed {
    Oid oid;
    std::vector<MoodValue> key;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(arg.size());
  for (Oid oid : arg.oids()) {
    MOOD_ASSIGN_OR_RETURN(std::string cls, objects_->ClassOf(oid));
    MOOD_ASSIGN_OR_RETURN(MoodValue tuple, objects_->Fetch(oid));
    MOOD_ASSIGN_OR_RETURN(auto key, KeyOf(tuple, cls, attributes));
    keyed.push_back(Keyed{oid, std::move(key)});
  }
  // Heap sort (the paper's only supported sort method). Comparison errors poison
  // the sort; record the first one.
  Status cmp_error;
  auto less = [&](const Keyed& a, const Keyed& b) {
    for (size_t i = 0; i < a.key.size(); i++) {
      auto c = a.key[i].Compare(b.key[i]);
      if (!c.ok()) {
        if (cmp_error.ok()) cmp_error = c.status();
        return false;
      }
      if (c.value() != 0) return ascending ? c.value() < 0 : c.value() > 0;
    }
    return false;
  };
  std::make_heap(keyed.begin(), keyed.end(), less);
  std::sort_heap(keyed.begin(), keyed.end(), less);
  MOOD_RETURN_IF_ERROR(cmp_error);

  std::vector<Oid> sorted;
  sorted.reserve(keyed.size());
  for (const auto& k : keyed) sorted.push_back(k.oid);
  if (arg.kind() == CollKind::kExtent) {
    return Collection::Extent(arg.class_name(), std::move(sorted));
  }
  // Set/list arguments yield the sorted list of object identifiers.
  return Collection::List(std::move(sorted));
}

Result<Collection> MoodAlgebra::DupElim(const Collection& arg) const {
  auto rule = DupElimReturn(arg.kind());
  if (!rule.has_value()) {
    return Status::InvalidArgument("DupElim is not applicable to " +
                                   std::string(CollKindName(arg.kind())));
  }
  if (arg.kind() == CollKind::kList) {
    std::vector<Oid> distinct;
    for (Oid o : arg.oids()) {
      if (std::find(distinct.begin(), distinct.end(), o) == distinct.end()) {
        distinct.push_back(o);
      }
    }
    return Collection::List(std::move(distinct));
  }
  // Extent: deep equality over object values.
  std::vector<Oid> distinct;
  std::vector<MoodValue> distinct_values;
  for (Oid o : arg.oids()) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, objects_->Fetch(o));
    bool dup = false;
    for (const auto& d : distinct_values) {
      MOOD_ASSIGN_OR_RETURN(bool eq, objects_->DeepEquals(v, d));
      if (eq) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      distinct.push_back(o);
      distinct_values.push_back(std::move(v));
    }
  }
  return Collection::Extent(arg.class_name(), std::move(distinct));
}

Result<Collection> MoodAlgebra::Union(const Collection& a, const Collection& b) const {
  MOOD_ASSIGN_OR_RETURN(CollKind out, SetOpReturnKind(a.kind(), b.kind()));
  std::vector<Oid> oids = a.oids();
  oids.insert(oids.end(), b.oids().begin(), b.oids().end());
  if (out == CollKind::kList) return Collection::List(std::move(oids));  // concat
  return Collection::Set(std::move(oids));
}

Result<Collection> MoodAlgebra::Intersection(const Collection& a,
                                             const Collection& b) const {
  MOOD_ASSIGN_OR_RETURN(CollKind out, SetOpReturnKind(a.kind(), b.kind()));
  std::unordered_set<uint64_t> right;
  for (Oid o : b.oids()) right.insert(o.Pack());
  std::vector<Oid> oids;
  for (Oid o : a.oids()) {
    if (right.count(o.Pack())) oids.push_back(o);
  }
  if (out == CollKind::kList) return Collection::List(std::move(oids));
  return Collection::Set(std::move(oids));
}

Result<Collection> MoodAlgebra::Difference(const Collection& a,
                                           const Collection& b) const {
  MOOD_ASSIGN_OR_RETURN(CollKind out, SetOpReturnKind(a.kind(), b.kind()));
  std::unordered_set<uint64_t> right;
  for (Oid o : b.oids()) right.insert(o.Pack());
  std::vector<Oid> oids;
  for (Oid o : a.oids()) {
    if (!right.count(o.Pack())) oids.push_back(o);
  }
  if (out == CollKind::kList) return Collection::List(std::move(oids));
  return Collection::Set(std::move(oids));
}

Result<Collection> MoodAlgebra::AsSet(const Collection& arg) const {
  if (arg.materialized()) {
    return Status::NotSupported("asSet over materialized value extents");
  }
  return Collection::Set(arg.oids());
}

Result<Collection> MoodAlgebra::AsList(const Collection& arg) const {
  if (arg.materialized()) {
    return Status::NotSupported("asList over materialized value extents");
  }
  return Collection::List(arg.oids());
}

Result<Collection> MoodAlgebra::AsExtent(const Collection& arg) const {
  MOOD_RETURN_IF_ERROR(AsExtentReturn(arg.kind()).status());
  return Collection::Extent("", arg.oids());
}

Result<Collection> MoodAlgebra::Unnest(const Collection& arg, int field_index) const {
  // Materialize the tuples.
  std::vector<MoodValue> tuples;
  for (size_t i = 0; i < arg.size(); i++) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, ElementValue(arg, i));
    if (v.kind() != ValueKind::kTuple) {
      return Status::TypeError("Unnest requires tuple-type elements");
    }
    tuples.push_back(std::move(v));
  }
  std::vector<MoodValue> out;
  for (const auto& t : tuples) {
    int idx = field_index;
    if (idx < 0) {
      for (size_t f = 0; f < t.size(); f++) {
        if (t.elements()[f].IsCollection()) {
          idx = static_cast<int>(f);
          break;
        }
      }
    }
    if (idx < 0 || static_cast<size_t>(idx) >= t.size() ||
        !t.elements()[static_cast<size_t>(idx)].IsCollection()) {
      out.push_back(t);  // nothing to unnest for this tuple
      continue;
    }
    const auto& nested = t.elements()[static_cast<size_t>(idx)];
    for (const auto& elem : nested.elements()) {
      MoodValue::ValueList fields = t.elements();
      fields[static_cast<size_t>(idx)] = elem;
      out.push_back(MoodValue::Tuple(std::move(fields)));
    }
  }
  return Collection::ValueExtent(std::move(out));
}

Result<Collection> MoodAlgebra::Nest(const Collection& arg, int field_index) const {
  std::vector<MoodValue> tuples;
  for (size_t i = 0; i < arg.size(); i++) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, ElementValue(arg, i));
    if (v.kind() != ValueKind::kTuple) {
      return Status::TypeError("Nest requires tuple-type elements");
    }
    tuples.push_back(std::move(v));
  }
  if (field_index < 0) return Status::InvalidArgument("Nest needs a field index");
  // Group by all other fields.
  std::vector<std::pair<MoodValue, MoodValue::ValueList>> groups;  // key tuple -> nested
  for (const auto& t : tuples) {
    if (static_cast<size_t>(field_index) >= t.size()) {
      return Status::InvalidArgument("Nest field index out of range");
    }
    MoodValue::ValueList key_fields;
    for (size_t f = 0; f < t.size(); f++) {
      if (f != static_cast<size_t>(field_index)) key_fields.push_back(t.elements()[f]);
    }
    MoodValue key = MoodValue::Tuple(std::move(key_fields));
    bool found = false;
    for (auto& [k, nested] : groups) {
      if (k.Equals(key)) {
        nested.push_back(t.elements()[static_cast<size_t>(field_index)]);
        found = true;
        break;
      }
    }
    if (!found) {
      groups.emplace_back(std::move(key),
                          MoodValue::ValueList{t.elements()[static_cast<size_t>(field_index)]});
    }
  }
  std::vector<MoodValue> out;
  for (auto& [key, nested] : groups) {
    MoodValue::ValueList fields = key.elements();
    fields.insert(fields.begin() + field_index, MoodValue::Set(std::move(nested)));
    out.push_back(MoodValue::Tuple(std::move(fields)));
  }
  return Collection::ValueExtent(std::move(out));
}

Result<Collection> MoodAlgebra::Flatten(const Collection& arg) const {
  std::vector<Oid> oids;
  auto add = [&](const MoodValue& v) -> Status {
    if (v.kind() == ValueKind::kReference) {
      oids.push_back(v.AsReference());
      return Status::OK();
    }
    if (v.IsCollection()) {
      for (const auto& e : v.elements()) {
        if (e.kind() == ValueKind::kReference) {
          oids.push_back(e.AsReference());
        } else {
          return Status::TypeError("Flatten expects collections of object identifiers");
        }
      }
      return Status::OK();
    }
    return Status::TypeError("Flatten expects collections of object identifiers");
  };
  for (size_t i = 0; i < arg.size(); i++) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, ElementValue(arg, i));
    MOOD_RETURN_IF_ERROR(add(v));
  }
  // The result of Flatten is always a set.
  return Collection::Set(std::move(oids));
}

}  // namespace mood
