#include "cost/join_costs.h"

#include <cmath>

#include "stats/approx.h"

namespace mood {

double ExpectedPages(double nbpages, double k) {
  if (nbpages <= 0) return 0;
  return nbpages * (1.0 - std::pow(1.0 - 1.0 / nbpages, k));
}

double ForwardTraversalCost(const ImplicitJoinInput& in, const DiskParameters& p) {
  double source = 0;
  if (!in.c_accessed_previously) {
    source = RndCost(ExpectedPages(in.nbpages_c, in.k_c), p);
  }
  return source + RndCost(in.k_c * in.fan, p);
}

double BackwardTraversalCost(const ImplicitJoinInput& in, const DiskParameters& p) {
  double cost = SeqCost(in.nbpages_c, p) + in.k_c * in.fan * in.k_d * p.cpu_cost;
  if (!in.d_accessed_previously) cost += SeqCost(in.nbpages_d, p);
  return cost;
}

double BinaryJoinIndexCost(double k, const BTreeCostParams& index,
                           const DiskParameters& p) {
  return IndCost(k, index, p);
}

double HashPartitionJoinCost(const ImplicitJoinInput& in, const DiskParameters& p) {
  double alpha = CApprox(in.card_c * in.fan, in.totref, in.k_c * in.fan);
  double nbpg = ExpectedPages(in.nbpages_d, alpha);
  double frac = in.card_c == 0 ? 0.0 : in.k_c / in.card_c;
  return 3.0 * frac * SeqCost(in.nbpages_c, p) + RndCost(nbpg, p);
}

Result<double> ForwardPathCost(const BoundPath& path, double k,
                               const SelectivityEstimator& est,
                               const DiskParameters& p) {
  const StatisticsManager* stats = est.stats();
  MOOD_ASSIGN_OR_RETURN(ClassStats root, stats->Class(path.classes[0]));
  // One initial seek + latency, then a random block access per root page and per
  // chased reference. Under the calibrated profile this reproduces Table 16's F
  // values exactly (see PaperCalibratedDiskParameters).
  double cost = p.s + p.r;
  cost += RndCost(std::ceil(ExpectedPages(root.nbpages, k)), p);
  const size_t ref_hops = path.classes.size() - 1;
  for (size_t i = 0; i < ref_hops; i++) {
    // Distinct objects alive at hop i when starting from k roots.
    MOOD_ASSIGN_OR_RETURN(double fref_i, est.Fref(path, k, i));
    MOOD_ASSIGN_OR_RETURN(ReferenceStats ref,
                          stats->Reference(path.classes[i], path.steps[i].name));
    cost += RndCost(fref_i * ref.fan, p);
  }
  return cost;
}

}  // namespace mood
