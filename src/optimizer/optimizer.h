#pragma once

#include <mutex>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/join_costs.h"
#include "objects/object_manager.h"
#include "optimizer/dictionaries.h"
#include "optimizer/plan.h"
#include "sql/binder.h"
#include "stats/selectivity.h"
#include "stats/statistics.h"

namespace mood {

struct OptimizerOptions {
  DiskParameters disk = PaperCalibratedDiskParameters();
  /// k0 used when ranking path expressions (the calibration behind Table 16
  /// implies the paper evaluated F with 10 root objects; see DESIGN.md).
  double path_rank_root_objects = 10;
  /// Default selectivity for predicates the model cannot estimate (methods,
  /// complex predicates in OtherSelInfo).
  double default_selectivity = 1.0 / 3.0;
};

/// The MOOD query optimizer (Sections 7-8): classifies predicates into the
/// ImmSelInfo / PathSelInfo / OtherSelInfo dictionaries, chooses index usage by
/// the Section 8.1 inequality, orders residual predicates by ascending
/// selectivity, orders path expressions by F/(1-s) (Algorithm 8.1), orders
/// implicit joins greedily by jc/(1-js) (Algorithm 8.2), and combines AND-term
/// subplans with UNION (Section 7).
class QueryOptimizer {
 public:
  QueryOptimizer(Catalog* catalog, ObjectManager* objects, StatisticsManager* stats,
                 OptimizerOptions options = {});

  struct Optimized {
    BoundQuery bound;
    PlanPtr plan;
    std::vector<AndTermInfo> terms;

    std::string Explain() const;
  };

  /// `use_feedback` gates the measured-selectivity store, the calibrated cost
  /// model, and auto stats refresh — off reproduces the paper's plans exactly
  /// (bench_example81 and the golden-plan tests rely on that).
  Result<Optimized> Optimize(const SelectStmt& stmt, bool use_feedback = true);

  /// Algorithm 8.1 as a pure function: the permutation of indexes sorted by
  /// ascending F_i / (1 - s_i).
  static std::vector<size_t> OrderByRank(const std::vector<double>& cost,
                                         const std::vector<double>& selectivity);

  /// The Appendix objective: f = F_{i1} + s_{i1} F_{i2} + s_{i1} s_{i2} F_{i3} + ...
  static double OrderingObjective(const std::vector<double>& cost,
                                  const std::vector<double>& selectivity,
                                  const std::vector<size_t>& perm);

  const OptimizerOptions& options() const { return options_; }
  SelectivityEstimator& estimator() { return estimator_; }

 private:
  /// Class statistics with live-extent fallback when no stats were collected.
  Result<ClassStats> ClassStatsOrLive(const std::string& cls) const;
  Result<double> AtomicSelectivityOrDefault(const std::string& cls,
                                            const std::string& attr, BinaryOp op,
                                            const MoodValue& constant) const;

  struct Classified {
    std::vector<ImmSelEntry> imm;
    std::vector<PathSelEntry> paths;
    std::vector<OtherSelEntry> other;
    std::vector<JoinPredEntry> joins;
  };
  Result<Classified> Classify(const BoundQuery& query, const AndTerm& term) const;

  /// Section 8.1: per-variable leaf plan (index choice + ordered residuals);
  /// updates the entries' cost columns. Returns the plan and the estimated
  /// candidate count.
  struct VarPlan {
    PlanPtr plan;
    double k = 0;        ///< estimated candidates
    bool accessed = false;  ///< a selection/scan already touched the objects
  };
  Result<VarPlan> BuildVarLeaf(const BoundQuery& query, const std::string& var,
                               std::vector<ImmSelEntry*> imm,
                               std::vector<OtherSelEntry*> other) const;

  /// Section 8.2 + Algorithm 8.2: expands one ordered path-selection predicate
  /// into a chain of implicit joins grafted onto the variable's current plan.
  Result<VarPlan> ExpandPathSelection(const BoundQuery& query, VarPlan current,
                                      const PathSelEntry& entry) const;

  /// Cost/selectivity of one implicit join hop under the four strategies;
  /// returns the cheapest.
  struct HopCost {
    JoinMethod method = JoinMethod::kForwardTraversal;
    double jc = 0;
    double js = 0;
    double Rank() const {
      double denom = 1.0 - js;
      if (denom <= 1e-12) return 1e308;
      return jc / denom;
    }
  };
  Result<HopCost> BestJoinStrategy(const std::string& c_class, const std::string& attr,
                                   const std::string& d_class, double k_c, double k_d,
                                   bool c_accessed, bool d_accessed) const;

  Catalog* catalog_;
  ObjectManager* objects_;
  StatisticsManager* stats_;
  OptimizerOptions options_;
  SelectivityEstimator estimator_;
  Binder binder_;
  /// Serializes Optimize: the members below are per-call scratch, and with
  /// sessions running statements concurrently two optimizations can otherwise
  /// overlap. Contention is limited to plan-cache misses — hits never enter.
  mutable std::mutex optimize_mu_;
  mutable int temp_var_counter_ = 0;
  // Per-Optimize state (guarded by optimize_mu_). active_disk_ is
  // options_.disk, or the measured CostCalibration once enough profiled
  // samples exist and feedback is on.
  mutable bool use_feedback_ = false;
  mutable bool calibrated_ = false;  ///< active_disk_ came from measurements
  mutable DiskParameters active_disk_;
};

}  // namespace mood
