#include "storage/slotted_page.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace mood {

void SlottedPage::Init() {
  std::memset(page_->data(), 0, kPageSize);
  set_lsn(kInvalidLsn);
  set_next_page(kInvalidPageId);
  EncodeFixed16(page_->data() + 12, 0);
  EncodeFixed16(page_->data() + 14, static_cast<uint16_t>(kPageSize));
}

Lsn SlottedPage::lsn() const { return DecodeFixed64(page_->data()); }
void SlottedPage::set_lsn(Lsn lsn) { EncodeFixed64(page_->data(), lsn); }

PageId SlottedPage::next_page() const { return DecodeFixed32(page_->data() + 8); }
void SlottedPage::set_next_page(PageId id) { EncodeFixed32(page_->data() + 8, id); }

uint16_t SlottedPage::slot_count() const { return DecodeFixed16(page_->data() + 12); }

uint16_t SlottedPage::SlotOffset(SlotId slot) const {
  return DecodeFixed16(SlotPtr(slot));
}
uint16_t SlottedPage::SlotLength(SlotId slot) const {
  return DecodeFixed16(SlotPtr(slot) + 2);
}
uint8_t SlottedPage::SlotFlagsAt(SlotId slot) const {
  return static_cast<uint8_t>(SlotPtr(slot)[4]);
}

void SlottedPage::WriteSlot(SlotId slot, uint16_t offset, uint16_t length,
                            uint8_t flags) {
  char* p = SlotPtr(slot);
  EncodeFixed16(p, offset);
  EncodeFixed16(p + 2, length);
  p[4] = static_cast<char>(flags);
  p[5] = 0;
}

size_t SlottedPage::FreeSpace() const {
  const size_t dir_end = kHeaderSize + static_cast<size_t>(slot_count()) * kSlotSize;
  const size_t free_ptr = DecodeFixed16(page_->data() + 14);
  // Contiguous middle gap only; fragmented space is recovered by Compact().
  return free_ptr > dir_end ? free_ptr - dir_end : 0;
}

bool SlottedPage::IsLive(SlotId slot) const {
  return slot < slot_count() && SlotOffset(slot) != 0;
}

uint16_t SlottedPage::LiveCount() const {
  uint16_t n = 0;
  for (SlotId s = 0; s < slot_count(); s++) {
    if (IsLive(s)) n++;
  }
  return n;
}

void SlottedPage::Compact() {
  struct LiveRec {
    SlotId slot;
    std::string bytes;
    uint8_t flags;
  };
  std::vector<LiveRec> live;
  for (SlotId s = 0; s < slot_count(); s++) {
    if (IsLive(s)) {
      live.push_back({s,
                      std::string(page_->data() + SlotOffset(s), SlotLength(s)),
                      SlotFlagsAt(s)});
    }
  }
  uint16_t free_ptr = static_cast<uint16_t>(kPageSize);
  for (auto& rec : live) {
    free_ptr = static_cast<uint16_t>(free_ptr - rec.bytes.size());
    std::memcpy(page_->data() + free_ptr, rec.bytes.data(), rec.bytes.size());
    WriteSlot(rec.slot, free_ptr, static_cast<uint16_t>(rec.bytes.size()), rec.flags);
  }
  EncodeFixed16(page_->data() + 14, free_ptr);
}

Result<SlotId> SlottedPage::Insert(Slice record, uint8_t flags) {
  if (record.size() > kPageSize - kHeaderSize - kSlotSize) {
    return Status::InvalidArgument("record too large for a page");
  }
  // Look for a reusable deleted slot first (no new directory entry needed).
  SlotId reuse = kInvalidSlot;
  for (SlotId s = 0; s < slot_count(); s++) {
    if (!IsLive(s)) {
      reuse = s;
      break;
    }
  }
  const size_t need = record.size() + (reuse == kInvalidSlot ? kSlotSize : 0);
  if (FreeSpace() < need) {
    Compact();
    if (FreeSpace() < need) {
      return Status::InvalidArgument("page full");
    }
  }
  uint16_t free_ptr = DecodeFixed16(page_->data() + 14);
  free_ptr = static_cast<uint16_t>(free_ptr - record.size());
  std::memcpy(page_->data() + free_ptr, record.data(), record.size());
  EncodeFixed16(page_->data() + 14, free_ptr);

  SlotId slot = reuse;
  if (slot == kInvalidSlot) {
    slot = slot_count();
    EncodeFixed16(page_->data() + 12, static_cast<uint16_t>(slot + 1));
  }
  WriteSlot(slot, free_ptr, static_cast<uint16_t>(record.size()), flags);
  page_->set_dirty(true);
  return slot;
}

Status SlottedPage::InsertAt(SlotId slot, Slice record, uint8_t flags) {
  if (slot >= slot_count()) return Status::InvalidArgument("InsertAt: slot out of range");
  if (IsLive(slot)) return Status::InvalidArgument("InsertAt: slot occupied");
  if (FreeSpace() < record.size()) {
    Compact();
    if (FreeSpace() < record.size()) return Status::InvalidArgument("page full");
  }
  uint16_t free_ptr = DecodeFixed16(page_->data() + 14);
  free_ptr = static_cast<uint16_t>(free_ptr - record.size());
  std::memcpy(page_->data() + free_ptr, record.data(), record.size());
  EncodeFixed16(page_->data() + 14, free_ptr);
  WriteSlot(slot, free_ptr, static_cast<uint16_t>(record.size()), flags);
  page_->set_dirty(true);
  return Status::OK();
}

Status SlottedPage::Delete(SlotId slot) {
  if (!IsLive(slot)) return Status::NotFound("slot not live");
  WriteSlot(slot, 0, 0, kSlotNormal);
  page_->set_dirty(true);
  return Status::OK();
}

Status SlottedPage::Update(SlotId slot, Slice record) {
  if (!IsLive(slot)) return Status::NotFound("slot not live");
  const uint16_t old_len = SlotLength(slot);
  const uint8_t flags = SlotFlagsAt(slot);
  if (record.size() <= old_len) {
    // Shrinking update: rewrite in place (leaves a small hole past the record).
    const uint16_t off = SlotOffset(slot);
    std::memcpy(page_->data() + off, record.data(), record.size());
    WriteSlot(slot, off, static_cast<uint16_t>(record.size()), flags);
    page_->set_dirty(true);
    return Status::OK();
  }
  // Growing update: free the old space, then allocate anew. Keep a copy of the old
  // bytes so the record can be restored if the new version does not fit.
  std::string old_bytes(page_->data() + SlotOffset(slot), old_len);
  WriteSlot(slot, 0, 0, kSlotNormal);
  if (FreeSpace() < record.size()) {
    Compact();
    if (FreeSpace() < record.size()) {
      uint16_t restore_ptr = DecodeFixed16(page_->data() + 14);
      restore_ptr = static_cast<uint16_t>(restore_ptr - old_bytes.size());
      std::memcpy(page_->data() + restore_ptr, old_bytes.data(), old_bytes.size());
      EncodeFixed16(page_->data() + 14, restore_ptr);
      WriteSlot(slot, restore_ptr, static_cast<uint16_t>(old_bytes.size()), flags);
      return Status::InvalidArgument("page full on update");
    }
  }
  uint16_t free_ptr = DecodeFixed16(page_->data() + 14);
  free_ptr = static_cast<uint16_t>(free_ptr - record.size());
  std::memcpy(page_->data() + free_ptr, record.data(), record.size());
  EncodeFixed16(page_->data() + 14, free_ptr);
  WriteSlot(slot, free_ptr, static_cast<uint16_t>(record.size()), flags);
  page_->set_dirty(true);
  return Status::OK();
}

Result<Slice> SlottedPage::Get(SlotId slot) const {
  if (!IsLive(slot)) return Status::NotFound("slot not live");
  return Slice(page_->data() + SlotOffset(slot), SlotLength(slot));
}

Result<uint8_t> SlottedPage::GetFlags(SlotId slot) const {
  if (!IsLive(slot)) return Status::NotFound("slot not live");
  return SlotFlagsAt(slot);
}

Status SlottedPage::SetFlags(SlotId slot, uint8_t flags) {
  if (!IsLive(slot)) return Status::NotFound("slot not live");
  WriteSlot(slot, SlotOffset(slot), SlotLength(slot), flags);
  page_->set_dirty(true);
  return Status::OK();
}

}  // namespace mood
