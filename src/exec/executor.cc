#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "exec/parallel.h"
#include "index/key_codec.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "txn/version_store.h"

namespace mood {

namespace {

/// Range-variable declarations reachable from a plan subtree (kBindClass /
/// kIndexSelect leaves). Used when a caller hands us a bare plan without the
/// BoundQuery that produced it.
void CollectRangeVars(const PlanNode& node, std::map<std::string, FromEntry>* out) {
  switch (node.op) {
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      out->emplace(node.from.var, node.from);
      return;
    default:
      break;
  }
  if (node.child != nullptr) CollectRangeVars(*node.child, out);
  if (node.left != nullptr) CollectRangeVars(*node.left, out);
  if (node.right != nullptr) CollectRangeVars(*node.right, out);
  for (const auto& c : node.children) CollectRangeVars(*c, out);
}

/// Index-probe comparison over encoded keys: MakeIndexKey is order-preserving
/// (the B+-tree relies on it), so the byte comparison here reproduces exactly
/// the lo/hi bounds IndSel derives for the same BinaryOp.
bool ProbeKeyMatches(const std::string& k, BinaryOp op, const std::string& key) {
  switch (op) {
    case BinaryOp::kEq: return k == key;
    case BinaryOp::kGt: return k > key;
    case BinaryOp::kGe: return k >= key;
    case BinaryOp::kLt: return k < key;
    case BinaryOp::kLe: return k <= key;
    default: return false;  // IndSel rejects other operators at plan time
  }
}

/// Splits a path index's dotted attribute chain ("a.b.c") into steps.
std::vector<std::string> SplitDottedPath(const std::string& path) {
  std::vector<std::string> steps;
  size_t start = 0;
  while (start <= path.size()) {
    size_t dot = path.find('.', start);
    if (dot == std::string::npos) {
      steps.push_back(path.substr(start));
      break;
    }
    steps.push_back(path.substr(start, dot - start));
    start = dot + 1;
  }
  return steps;
}

/// Scoped profiling span: null node = profiling off, every hook degenerates to
/// one pointer test. Timing is taken only when the node exists.
struct StageSpan {
  QueryProfile* node = nullptr;
  uint64_t start = 0;

  static StageSpan Begin(QueryProfile* parent, const char* label, size_t rows_in) {
    StageSpan s;
    if (parent != nullptr) {
      s.node = parent->AddChild(label);
      s.node->rows_in = rows_in;
      s.start = ProfileNowNs();
    }
    return s;
  }
  void End(size_t rows_out) {
    if (node != nullptr) {
      node->rows_out = rows_out;
      node->wall_ns = ProfileNowNs() - start;
    }
  }
};

/// Interpreter environment hoisted out of the row loop: the var map and the
/// deref-cache handle are set up once per batch/morsel, then only the Oid
/// bindings are rewritten per row. (Rebuilding the whole env per row — a map
/// allocation plus a deref-handle re-resolve for every row — was the Filter
/// operator's known perf bug.) Built lazily: queries where every predicate
/// stays compiled never pay for it.
struct BoundEnv {
  Evaluator::Env env;
  std::vector<std::map<std::string, Oid>::iterator> binds;
  bool ready = false;

  void Prepare(const std::vector<std::string>& vars, DerefCache* cache,
               const std::vector<MoodValue>* params) {
    if (ready) return;
    env.deref = cache;
    env.params = params;
    binds.reserve(vars.size());
    for (const std::string& v : vars) {
      binds.push_back(env.vars.emplace(v, Oid{}).first);
    }
    ready = true;
  }
  void BindRow(const std::vector<std::string>& vars, const RowBatch& b, uint32_t row,
               DerefCache* cache, const std::vector<MoodValue>* params) {
    Prepare(vars, cache, params);
    for (size_t i = 0; i < binds.size(); i++) binds[i]->second = b.col(i)[row];
  }
  void BindRow(const std::vector<std::string>& vars, const std::vector<Oid>& row,
               DerefCache* cache, const std::vector<MoodValue>* params) {
    Prepare(vars, cache, params);
    for (size_t i = 0; i < binds.size(); i++) binds[i]->second = row[i];
  }
};

/// Batch results flatten to the row-major RowSet in row order (public
/// ExecutePlan API and the differential oracle comparisons).
RowSet FlattenBatches(const BatchSet& bs) {
  RowSet rs;
  rs.vars = bs.vars;
  rs.rows.reserve(bs.ActiveRows());
  std::vector<Oid> rowbuf;
  for (const RowBatch& b : bs.batches) {
    rowbuf.resize(b.nslots);
    for (size_t k = 0; k < b.ActiveRows(); k++) {
      b.GatherRow(b.RowAt(k), rowbuf.data());
      rs.rows.push_back(rowbuf);
    }
  }
  return rs;
}

/// DISTINCT stage shared by both Finish paths (operates on final values).
/// Hashed dedup on the same EncodeTo key encoding GROUP BY uses (the encoding
/// is type-tagged, so distinct kinds never collide); first occurrence wins,
/// preserving the pre-dedup row order.
void ApplyDistinct(QueryResult* result, QueryProfile* prof) {
  StageSpan span = StageSpan::Begin(prof, "DISTINCT", result->rows.size());
  std::vector<std::vector<MoodValue>> dedup;
  std::unordered_set<std::string> seen;
  seen.reserve(result->rows.size());
  std::string key;
  for (auto& row : result->rows) {
    key.clear();
    for (const MoodValue& v : row) v.EncodeTo(&key);
    if (seen.insert(key).second) dedup.push_back(std::move(row));
  }
  result->rows = std::move(dedup);
  span.End(result->rows.size());
}

}  // namespace

std::string QueryResult::ToString(size_t limit) const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < columns.size(); c++) widths[c] = columns[c].size();
  size_t n = rows.size();
  if (limit > 0 && limit < n) n = limit;
  for (size_t r = 0; r < n; r++) {
    std::vector<std::string> line;
    for (size_t c = 0; c < rows[r].size(); c++) {
      std::string cell = rows[r][c].ToString();
      if (c < widths.size()) widths[c] = std::max(widths[c], cell.size());
      line.push_back(std::move(cell));
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  auto pad = [&](const std::string& s, size_t w) {
    out += s;
    out.append(w > s.size() ? w - s.size() : 0, ' ');
    out += "  ";
  };
  for (size_t c = 0; c < columns.size(); c++) pad(columns[c], widths[c]);
  out += "\n";
  for (size_t c = 0; c < columns.size(); c++) {
    out += std::string(widths[c], '-');
    out += "  ";
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); c++) pad(line[c], c < widths.size() ? widths[c] : 0);
    out += "\n";
  }
  if (limit > 0 && rows.size() > limit) {
    out += "... (" + std::to_string(rows.size() - limit) + " more rows)\n";
  }
  return out;
}

Evaluator::Env Executor::EnvOf(const RowSet& rs, const std::vector<Oid>& row,
                               DerefCache* cache,
                               const std::vector<MoodValue>* params) const {
  Evaluator::Env env;
  env.deref = cache;
  env.params = params;
  for (size_t i = 0; i < rs.vars.size(); i++) env.vars[rs.vars[i]] = row[i];
  return env;
}

ExprCompileEnv Executor::CompileEnvOf(
    const std::vector<std::string>& vars,
    const std::map<std::string, FromEntry>* range_vars) const {
  ExprCompileEnv env;
  for (size_t i = 0; i < vars.size(); i++) {
    ExprCompileEnv::VarInfo vi;
    vi.slot = static_cast<uint32_t>(i);
    if (range_vars != nullptr) {
      auto it = range_vars->find(vars[i]);
      if (it != range_vars->end()) {
        const FromEntry& fe = it->second;
        if (!fe.every) {
          // A plain FROM scans one extent: every instance is exactly this class.
          vi.class_name = fe.class_name;
          vi.single_class = true;
        } else {
          // EVERY is polymorphic unless the exclusions prune the subtree to a
          // single class (e.g. `EVERY Automobile - JapaneseAuto` with exactly
          // one remaining extent).
          auto classes = objects_->ScanClasses(fe.class_name, true, fe.excludes);
          if (classes.ok() && classes.value().size() == 1) {
            vi.class_name = classes.value()[0];
            vi.single_class = true;
          }
        }
      }
    }
    env.vars.emplace(vars[i], vi);
  }
  return env;
}

ExprProgramPtr Executor::CompileExpr(const ExprPtr& expr,
                                     const std::vector<std::string>& vars,
                                     const Ctx& ctx) const {
  if (!ctx.compile || expr == nullptr) return nullptr;
  // A cached plan carries a memo of its compiled programs (keyed by Expr
  // identity), so steady-state executions skip lowering entirely — including
  // re-discovering that an expression must stay interpreted.
  if (ctx.program_memo != nullptr) {
    ExprProgramPtr memoized;
    if (ctx.program_memo->Lookup(expr.get(), &memoized)) return memoized;
  }
  ExprCompileEnv cenv = CompileEnvOf(vars, ctx.range_vars);
  ExprCompiler compiler(objects_);
  std::unique_ptr<ExprProgram> prog = compiler.Compile(expr, cenv);
  if (prog == nullptr) {
    if (expr_fallback_ != nullptr) expr_fallback_->Add(1);
    if (ctx.program_memo != nullptr) ctx.program_memo->Insert(expr.get(), nullptr);
    return nullptr;
  }
  if (expr_compiled_ != nullptr) expr_compiled_->Add(1);
  if (expr_folded_ != nullptr && prog->const_folded() > 0) {
    expr_folded_->Add(prog->const_folded());
  }
  ExprProgramPtr shared(std::move(prog));
  if (ctx.program_memo != nullptr) ctx.program_memo->Insert(expr.get(), shared);
  return shared;
}

void Executor::CountRuntimeFallback() const {
  if (expr_fallback_ != nullptr) expr_fallback_->Add(1);
}

Status Executor::ChaseRefs(Oid from, const std::vector<std::string>& path,
                           DerefCache* cache,
                           const std::function<Status(Oid)>& fn) const {
  if (path.empty()) return fn(from);
  MOOD_ASSIGN_OR_RETURN(MoodValue v, objects_->GetAttribute(from, path[0], cache));
  std::vector<std::string> rest(path.begin() + 1, path.end());
  auto handle = [&](const MoodValue& r) -> Status {
    if (r.is_null()) return Status::OK();
    if (r.kind() != ValueKind::kReference) {
      return Status::TypeError("reference path step '" + path[0] +
                               "' reached a non-reference value");
    }
    return ChaseRefs(r.AsReference(), rest, cache, fn);
  };
  if (v.IsCollection()) {
    for (const auto& e : v.elements()) MOOD_RETURN_IF_ERROR(handle(e));
    return Status::OK();
  }
  return handle(v);
}

Result<RowSet> Executor::ExecBind(const PlanNode& node, Ctx& ctx) const {
  RowSet rs;
  rs.vars = {node.from.var};
  // MV delta maintenance: the restricted variable binds exactly the delta
  // OIDs (caller-provided order) instead of scanning the extent.
  if (ctx.bind_var != nullptr && *ctx.bind_var == node.from.var) {
    for (Oid oid : *ctx.bind_oids) rs.rows.push_back({oid});
    return rs;
  }
  if (ctx.threads <= 1) {
    MOOD_RETURN_IF_ERROR(objects_->ScanExtent(node.from.class_name, node.from.every,
                                              node.from.excludes, ctx.snapshot,
                                              [&](Oid oid, const MoodValue&) {
                                                rs.rows.push_back({oid});
                                                return Status::OK();
                                              }));
    if (ctx.profile != nullptr) {
      // Report the page-task count the parallel path would partition into, so
      // the profile's morsel column is identical across thread counts.
      MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                            objects_->ScanClasses(node.from.class_name, node.from.every,
                                                  node.from.excludes));
      size_t pages = 0;
      for (const std::string& cls : classes) {
        MOOD_ASSIGN_OR_RETURN(std::vector<PageId> ids, objects_->ExtentPageIds(cls));
        pages += ids.size();
      }
      ctx.profile->morsels = pages;
    }
    return rs;
  }
  // Parallel extent scan: one morsel per extent page, in (class, chain) order —
  // the exact sequence ScanExtent visits — so the in-order merge reproduces the
  // serial result.
  MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                        objects_->ScanClasses(node.from.class_name, node.from.every,
                                              node.from.excludes));
  struct PageTask {
    const std::string* class_name;
    PageId page;
    HeapFile::ScanCursor* cursor;
  };
  std::vector<PageTask> tasks;
  // One readahead cursor per class: workers advancing through a class's chain
  // share the scan front, so prefetches run ahead of the fastest worker.
  std::vector<std::unique_ptr<HeapFile::ScanCursor>> cursors;
  // Task-index range of each class, so the merge can append that class's
  // snapshot leftovers right after its pages (= serial snapshot-scan order).
  std::vector<std::pair<size_t, size_t>> class_tasks;
  for (const std::string& cls : classes) {
    MOOD_ASSIGN_OR_RETURN(std::vector<PageId> pages, objects_->ExtentPageIds(cls));
    cursors.push_back(std::make_unique<HeapFile::ScanCursor>());
    size_t begin = tasks.size();
    for (PageId p : pages) tasks.push_back({&cls, p, cursors.back().get()});
    class_tasks.emplace_back(begin, tasks.size());
  }
  if (ctx.profile != nullptr) ctx.profile->morsels = tasks.size();
  std::vector<std::vector<std::vector<Oid>>> partial(tasks.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, tasks.size(), [&](size_t t) {
    return objects_->ScanExtentPage(*tasks[t].class_name, tasks[t].page,
                                    tasks[t].cursor, ctx.snapshot,
                                    [&](Oid oid, const MoodValue&) {
                                      partial[t].push_back({oid});
                                      return Status::OK();
                                    });
  }));
  for (size_t c = 0; c < classes.size(); c++) {
    for (size_t t = class_tasks[c].first; t < class_tasks[c].second; t++) {
      for (auto& row : partial[t]) rs.rows.push_back(std::move(row));
    }
    MOOD_RETURN_IF_ERROR(objects_->SnapshotLeftovers(classes[c], ctx.snapshot,
                                                     [&](Oid oid, const MoodValue&) {
                                                       rs.rows.push_back({oid});
                                                       return Status::OK();
                                                     }));
  }
  return rs;
}

Result<bool> Executor::SnapshotScanHasVersions(const FromEntry& from,
                                               const SnapshotView& snap) const {
  if (!snap.active()) return false;
  MOOD_ASSIGN_OR_RETURN(
      std::vector<std::string> classes,
      objects_->ScanClasses(from.class_name, from.every, from.excludes));
  for (const std::string& cls : classes) {
    MOOD_ASSIGN_OR_RETURN(const MoodsType* type, objects_->catalog()->Lookup(cls));
    if (type->extent_file != kInvalidFileId &&
        snap.versions->FileHasVersions(type->extent_file)) {
      return true;
    }
  }
  return false;
}

Result<std::vector<Oid>> Executor::SnapshotProbeScan(const PlanNode& node,
                                                     Ctx& ctx) const {
  // Resolve every probe's key once, exactly as RunIndexProbes would.
  struct ResolvedProbe {
    const IndexProbe* probe;
    std::string key;
    std::vector<std::string> path;  // kPath probes only
  };
  std::vector<ResolvedProbe> probes;
  probes.reserve(node.probes.size());
  for (const IndexProbe& probe : node.probes) {
    const MoodValue* key = &probe.constant;
    if (probe.param >= 0) {
      if (ctx.params == nullptr ||
          static_cast<size_t>(probe.param) >= ctx.params->size()) {
        return Status::InvalidArgument(
            "parameter ?" + std::to_string(probe.param + 1) + " not bound");
      }
      key = &(*ctx.params)[static_cast<size_t>(probe.param)];
    }
    ResolvedProbe rp{&probe, MakeIndexKey(*key), {}};
    if (probe.index.kind == IndexKind::kPath) {
      rp.path = SplitDottedPath(probe.index.attribute);
    }
    probes.push_back(std::move(rp));
  }
  // An object matches when each probe's comparison holds for its visible
  // attribute value (any terminal for path probes) — the membership the index
  // would report if it were versioned. NotFound attributes simply don't match
  // (they would have no index entry either).
  auto matches = [&](Oid oid) -> Result<bool> {
    for (const ResolvedProbe& rp : probes) {
      bool hit = false;
      if (rp.probe->index.kind == IndexKind::kPath) {
        MOOD_RETURN_IF_ERROR(objects_->TraversePath(
            oid, rp.path, ctx.cache, [&](const MoodValue& terminal) {
              if (ProbeKeyMatches(MakeIndexKey(terminal), rp.probe->cmp, rp.key)) {
                hit = true;
              }
              return Status::OK();
            }));
      } else {
        Result<MoodValue> v =
            objects_->GetAttribute(oid, rp.probe->index.attribute, ctx.cache);
        if (!v.ok()) {
          if (v.status().IsNotFound()) return false;
          return v.status();
        }
        hit = ProbeKeyMatches(MakeIndexKey(v.value()), rp.probe->cmp, rp.key);
      }
      if (!hit) return false;
    }
    return true;
  };
  std::vector<Oid> out;
  MOOD_RETURN_IF_ERROR(objects_->ScanExtent(
      node.from.class_name, node.from.every, node.from.excludes, ctx.snapshot,
      [&](Oid oid, const MoodValue&) -> Status {
        MOOD_ASSIGN_OR_RETURN(bool keep, matches(oid));
        if (keep) out.push_back(oid);
        return Status::OK();
      }));
  return out;
}

Result<std::vector<Oid>> Executor::RunIndexProbes(const PlanNode& node, Ctx& ctx) const {
  if (ctx.snapshot.active()) {
    // Indexes reflect the latest committed state, not the snapshot: a key
    // updated (or an object deleted/created) after the snapshot pins would
    // make the probe over- or under-report. While version chains exist on any
    // scanned extent file, answer from the snapshot-visible extent instead;
    // in steady state (no chains) the index path below stays untouched.
    MOOD_ASSIGN_OR_RETURN(bool compensate,
                          SnapshotScanHasVersions(node.from, ctx.snapshot));
    if (compensate) {
      if (ctx.profile != nullptr) ctx.profile->morsels = node.probes.size();
      return SnapshotProbeScan(node, ctx);
    }
  }
  if (ctx.profile != nullptr) ctx.profile->morsels = node.probes.size();
  // Probes run in parallel (each is an independent index lookup); the
  // intersection then folds them in probe order, preserving the first probe's
  // oid order exactly as the serial loop does.
  std::vector<std::vector<Oid>> selected(node.probes.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, node.probes.size(), [&](size_t p) {
    const IndexProbe& probe = node.probes[p];
    // Parameterized probes resolve their key from the execution's bindings (a
    // cached plan is reused across values of the same type signature).
    const MoodValue* key = &probe.constant;
    if (probe.param >= 0) {
      if (ctx.params == nullptr ||
          static_cast<size_t>(probe.param) >= ctx.params->size()) {
        return Status::InvalidArgument(
            "parameter ?" + std::to_string(probe.param + 1) + " not bound");
      }
      key = &(*ctx.params)[static_cast<size_t>(probe.param)];
    }
    MOOD_ASSIGN_OR_RETURN(
        Collection sel,
        algebra_->IndSel(node.from.class_name, probe.index, probe.cmp, *key));
    selected[p] = sel.oids();
    return Status::OK();
  }));
  std::vector<Oid> current;
  for (size_t p = 0; p < selected.size(); p++) {
    if (p == 0) {
      current = std::move(selected[p]);
    } else {
      std::unordered_set<uint64_t> keep;
      for (Oid o : selected[p]) keep.insert(o.Pack());
      std::vector<Oid> next;
      for (Oid o : current) {
        if (keep.count(o.Pack())) next.push_back(o);
      }
      current = std::move(next);
    }
  }
  return current;
}

Result<RowSet> Executor::ExecIndexSelect(const PlanNode& node, Ctx& ctx) const {
  RowSet rs;
  rs.vars = {node.from.var};
  MOOD_ASSIGN_OR_RETURN(std::vector<Oid> current, RunIndexProbes(node, ctx));
  for (Oid o : current) rs.rows.push_back({o});
  return rs;
}

Result<RowSet> Executor::ExecFilter(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(RowSet child, Exec(node.child, ctx));
  RowSet rs;
  rs.vars = child.vars;
  // Compile each predicate once per operator (slots bound to child.vars order);
  // the read-only programs are shared by every morsel worker. A null program
  // means that predicate stays interpreted.
  std::vector<ExprProgramPtr> programs(node.predicates.size());
  for (size_t p = 0; p < node.predicates.size(); p++) {
    programs[p] = CompileExpr(node.predicates[p], child.vars, ctx);
  }
  // Each morsel of child rows evaluates the predicate chain independently; the
  // kept rows merge back in morsel order, matching the serial scan.
  std::vector<Morsel> morsels = MakeMorsels(child.rows.size());
  if (ctx.profile != nullptr) ctx.profile->morsels = morsels.size();
  std::vector<std::vector<std::vector<Oid>>> partial(morsels.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, morsels.size(), [&](size_t m) {
    ExprProgram::Scratch scratch;
    scratch.params = ctx.params;
    // The interpreter env is hoisted to the morsel and built only when some
    // predicate actually needs the interpreted path; rows just rebind Oids.
    BoundEnv benv;
    for (size_t i = morsels[m].begin; i < morsels[m].end; i++) {
      auto& row = child.rows[i];
      bool keep = true;
      for (size_t p = 0; p < node.predicates.size(); p++) {
        if (programs[p] != nullptr) {
          bool need_fallback = false;
          auto r = programs[p]->EvalPredicate(row.data(), row.size(), ctx.cache,
                                              &scratch, &need_fallback);
          MOOD_RETURN_IF_ERROR(r.status());
          if (!need_fallback) {
            keep = r.value();
            if (!keep) break;  // short-circuit: predicates are selectivity-ordered
            continue;
          }
          CountRuntimeFallback();
        }
        benv.BindRow(child.vars, row, ctx.cache, ctx.params);
        MOOD_ASSIGN_OR_RETURN(keep,
                              evaluator_->EvalPredicate(node.predicates[p], benv.env));
        if (!keep) break;
      }
      if (keep) partial[m].push_back(std::move(row));
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecPointerJoin(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(RowSet left, Exec(node.left, ctx));
  MOOD_ASSIGN_OR_RETURN(RowSet right, Exec(node.right, ctx));
  int ref_idx = left.VarIndex(node.ref_var);
  int tgt_idx = right.VarIndex(node.target_var);
  if (ref_idx < 0 || tgt_idx < 0) {
    return Status::Internal("pointer join variables not bound by children");
  }
  RowSet rs;
  rs.vars = left.vars;
  rs.vars.insert(rs.vars.end(), right.vars.begin(), right.vars.end());

  // Right rows indexed by target oid.
  std::unordered_map<uint64_t, std::vector<size_t>> right_by_oid;
  for (size_t i = 0; i < right.rows.size(); i++) {
    right_by_oid[right.rows[i][static_cast<size_t>(tgt_idx)].Pack()].push_back(i);
  }

  auto emit = [&](const std::vector<Oid>& lrow, size_t rrow) {
    std::vector<Oid> combined = lrow;
    combined.insert(combined.end(), right.rows[rrow].begin(), right.rows[rrow].end());
    rs.rows.push_back(std::move(combined));
  };

  bool use_bji = node.method == JoinMethod::kIndexed && node.ref_path.size() == 1;
  if (use_bji && ctx.snapshot.active() && node.left != nullptr) {
    // The BJI maps the *latest* reference values. Under a snapshot with live
    // version chains on the left extent the refs may have changed since the
    // pin, so fall through to the chase path, which reads references through
    // the snapshot-aware deref cache.
    MOOD_ASSIGN_OR_RETURN(bool stale,
                          SnapshotScanHasVersions(node.left->from, ctx.snapshot));
    if (stale) use_bji = false;
  }
  if (use_bji) {
    auto desc = objects_->catalog()->FindIndex(
        node.left ? node.left->from.class_name : "", node.ref_path[0],
        IndexKind::kBinaryJoin);
    // Fall through to chasing when the index is missing (plans stay executable
    // even if an index was dropped after optimization).
    if (desc.has_value()) {
      MOOD_ASSIGN_OR_RETURN(BinaryJoinIndex * bji, objects_->OpenJoinIndex(*desc));
      std::unordered_map<uint64_t, std::vector<size_t>> left_by_ref;
      for (size_t i = 0; i < left.rows.size(); i++) {
        left_by_ref[left.rows[i][static_cast<size_t>(ref_idx)].Pack()].push_back(i);
      }
      std::set<std::pair<size_t, size_t>> emitted;
      for (size_t r = 0; r < right.rows.size(); r++) {
        Oid target = right.rows[r][static_cast<size_t>(tgt_idx)];
        MOOD_ASSIGN_OR_RETURN(auto sources, bji->Sources(target));
        for (Oid src : sources) {
          auto it = left_by_ref.find(src.Pack());
          if (it == left_by_ref.end()) continue;
          for (size_t l : it->second) {
            if (emitted.insert({l, r}).second) emit(left.rows[l], r);
          }
        }
      }
      return rs;
    }
  }

  // Forward / backward / hash-partition: in memory they all chase the stored
  // references and probe the inner side; the strategies differ in the disk
  // access pattern the cost model prices (Section 6). The chase side (the probe)
  // fans out across workers in left-row morsels; right_by_oid is read-only here.
  std::vector<Morsel> morsels = MakeMorsels(left.rows.size());
  if (ctx.profile != nullptr) ctx.profile->morsels = morsels.size();
  std::vector<std::vector<std::vector<Oid>>> partial(morsels.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, morsels.size(), [&](size_t m) {
    for (size_t i = morsels[m].begin; i < morsels[m].end; i++) {
      const auto& lrow = left.rows[i];
      Oid from = lrow[static_cast<size_t>(ref_idx)];
      MOOD_RETURN_IF_ERROR(ChaseRefs(from, node.ref_path, ctx.cache, [&](Oid reached) {
        auto it = right_by_oid.find(reached.Pack());
        if (it != right_by_oid.end()) {
          for (size_t r : it->second) {
            std::vector<Oid> combined = lrow;
            combined.insert(combined.end(), right.rows[r].begin(),
                            right.rows[r].end());
            partial[m].push_back(std::move(combined));
          }
        }
        return Status::OK();
      }));
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecNestedLoop(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(RowSet left, Exec(node.left, ctx));
  MOOD_ASSIGN_OR_RETURN(RowSet right, Exec(node.right, ctx));
  RowSet rs;
  rs.vars = left.vars;
  rs.vars.insert(rs.vars.end(), right.vars.begin(), right.vars.end());
  // Join predicate compiled against the combined (left ++ right) slot layout.
  ExprProgramPtr join_prog = CompileExpr(node.join_pred, rs.vars, ctx);
  // The outer (left) side partitions into morsels; every worker loops the full
  // inner side, so merged morsels reproduce the serial (lrow, rrow) order.
  std::vector<Morsel> morsels = MakeMorsels(left.rows.size());
  if (ctx.profile != nullptr) ctx.profile->morsels = morsels.size();
  std::vector<std::vector<std::vector<Oid>>> partial(morsels.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, morsels.size(), [&](size_t m) {
    ExprProgram::Scratch scratch;
    scratch.params = ctx.params;
    for (size_t i = morsels[m].begin; i < morsels[m].end; i++) {
      const auto& lrow = left.rows[i];
      for (const auto& rrow : right.rows) {
        std::vector<Oid> combined = lrow;
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        if (node.join_pred != nullptr) {
          bool match = false;
          bool interpreted = join_prog == nullptr;
          if (join_prog != nullptr) {
            bool need_fallback = false;
            auto r = join_prog->EvalPredicate(combined.data(), combined.size(),
                                              ctx.cache, &scratch, &need_fallback);
            MOOD_RETURN_IF_ERROR(r.status());
            if (need_fallback) {
              CountRuntimeFallback();
              interpreted = true;
            } else {
              match = r.value();
            }
          }
          if (interpreted) {
            Evaluator::Env env = EnvOf(rs, combined, ctx.cache, ctx.params);
            MOOD_ASSIGN_OR_RETURN(match,
                                  evaluator_->EvalPredicate(node.join_pred, env));
          }
          if (!match) continue;
        }
        partial[m].push_back(std::move(combined));
      }
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& row : part) rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<RowSet> Executor::ExecUnion(const PlanNode& node, Ctx& ctx) const {
  if (node.children.empty()) return RowSet{};
  MOOD_ASSIGN_OR_RETURN(RowSet first, Exec(node.children[0], ctx));
  // Align every child on the first child's variable order and deduplicate
  // (DNF AND-terms overlap, so the UNION needs set semantics).
  std::set<std::vector<uint64_t>> seen;
  RowSet rs;
  rs.vars = first.vars;
  auto add = [&](const RowSet& child) -> Status {
    std::vector<int> mapping(rs.vars.size());
    for (size_t i = 0; i < rs.vars.size(); i++) {
      mapping[i] = child.VarIndex(rs.vars[i]);
      if (mapping[i] < 0) {
        return Status::Internal("UNION children bind different range variables");
      }
    }
    for (const auto& row : child.rows) {
      std::vector<Oid> aligned(rs.vars.size());
      std::vector<uint64_t> key(rs.vars.size());
      for (size_t i = 0; i < rs.vars.size(); i++) {
        aligned[i] = row[static_cast<size_t>(mapping[i])];
        key[i] = aligned[i].Pack();
      }
      if (seen.insert(key).second) rs.rows.push_back(std::move(aligned));
    }
    return Status::OK();
  };
  MOOD_RETURN_IF_ERROR(add(first));
  for (size_t c = 1; c < node.children.size(); c++) {
    MOOD_ASSIGN_OR_RETURN(RowSet child, Exec(node.children[c], ctx));
    MOOD_RETURN_IF_ERROR(add(child));
  }
  return rs;
}

Result<RowSet> Executor::Dispatch(const PlanNode& node, Ctx& ctx) const {
  switch (node.op) {
    case PlanOp::kBindClass: return ExecBind(node, ctx);
    case PlanOp::kIndexSelect: return ExecIndexSelect(node, ctx);
    case PlanOp::kFilter: return ExecFilter(node, ctx);
    case PlanOp::kPointerJoin: return ExecPointerJoin(node, ctx);
    case PlanOp::kNestedLoopJoin: return ExecNestedLoop(node, ctx);
    case PlanOp::kUnion: return ExecUnion(node, ctx);
  }
  return Status::Internal("unknown plan operator");
}

Result<RowSet> Executor::Exec(const PlanPtr& plan, Ctx& ctx) const {
  if (ctx.profile == nullptr) return Dispatch(*plan, ctx);

  // Profiling on: mirror the plan node into the profile tree, then dispatch
  // with the mirrored node as the attach point so children nest underneath.
  QueryProfile* node = ctx.profile->AddChild(plan->Describe());
  node->est_rows = plan->est_rows;
  node->est_cost = plan->est_cost;
  node->has_estimates = true;
  BufferPoolStats before;
  if (ctx.pool != nullptr) before = ctx.pool->stats();
  uint64_t start = ProfileNowNs();
  Ctx sub = ctx;
  sub.profile = node;
  Result<RowSet> result = Dispatch(*plan, sub);
  node->wall_ns = ProfileNowNs() - start;  // inclusive of children
  if (ctx.pool != nullptr) {
    BufferPoolStats after = ctx.pool->stats();
    node->pool.hits = after.hits - before.hits;
    node->pool.misses = after.misses - before.misses;
    node->pool.evictions = after.evictions - before.evictions;
    node->pool.prefetches = after.prefetches - before.prefetches;
  }
  if (result.ok()) {
    node->rows_out = result.value().rows.size();
    uint64_t in = 0;
    for (const auto& c : node->children) in += c->rows_out;
    node->rows_in = in;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Batch-at-a-time operator path (ctx.batch > 0). A one-for-one mirror of the
// row operators above: operators exchange column-major RowBatches with
// selection vectors, expressions evaluate through ExprProgram::EvalBatch, and
// whole batches are the morsel unit. The row path is kept verbatim as the
// differential-testing oracle (batch_size = 0); batch_exec_test asserts both
// paths produce identical results and error statuses.
// ---------------------------------------------------------------------------

Result<BatchSet> Executor::ExecBindB(const PlanNode& node, Ctx& ctx) const {
  BatchSet bs;
  bs.vars = {node.from.var};
  // MV delta maintenance (mirrors the row path).
  if (ctx.bind_var != nullptr && *ctx.bind_var == node.from.var) {
    BatchAppender out(&bs, 1, ctx.batch);
    for (Oid oid : *ctx.bind_oids) out.Push(&oid, 1);
    return bs;
  }
  if (ctx.threads <= 1) {
    BatchAppender out(&bs, 1, ctx.batch);
    MOOD_RETURN_IF_ERROR(objects_->ScanExtent(node.from.class_name, node.from.every,
                                              node.from.excludes, ctx.snapshot,
                                              [&](Oid oid, const MoodValue&) {
                                                out.Push(&oid, 1);
                                                return Status::OK();
                                              }));
    if (ctx.profile != nullptr) {
      // Same page-task morsel accounting as the row path, for the same reason:
      // the profile must be identical across thread counts.
      MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                            objects_->ScanClasses(node.from.class_name, node.from.every,
                                                  node.from.excludes));
      size_t pages = 0;
      for (const std::string& cls : classes) {
        MOOD_ASSIGN_OR_RETURN(std::vector<PageId> ids, objects_->ExtentPageIds(cls));
        pages += ids.size();
      }
      ctx.profile->morsels = pages;
    }
    return bs;
  }
  // Parallel scan: the row path's page tasks, but the per-page oid runs pack
  // into fixed-size batches in (class, chain) order — batches freely straddle
  // page boundaries, and the in-order pack reproduces the serial scan order.
  MOOD_ASSIGN_OR_RETURN(std::vector<std::string> classes,
                        objects_->ScanClasses(node.from.class_name, node.from.every,
                                              node.from.excludes));
  struct PageTask {
    const std::string* class_name;
    PageId page;
    HeapFile::ScanCursor* cursor;
  };
  std::vector<PageTask> tasks;
  std::vector<std::unique_ptr<HeapFile::ScanCursor>> cursors;
  // Same per-class task ranges as the row path: each class's snapshot
  // leftovers pack right after its pages, preserving the serial order.
  std::vector<std::pair<size_t, size_t>> class_tasks;
  for (const std::string& cls : classes) {
    MOOD_ASSIGN_OR_RETURN(std::vector<PageId> pages, objects_->ExtentPageIds(cls));
    cursors.push_back(std::make_unique<HeapFile::ScanCursor>());
    size_t begin = tasks.size();
    for (PageId p : pages) tasks.push_back({&cls, p, cursors.back().get()});
    class_tasks.emplace_back(begin, tasks.size());
  }
  if (ctx.profile != nullptr) ctx.profile->morsels = tasks.size();
  std::vector<std::vector<Oid>> partial(tasks.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, tasks.size(), [&](size_t t) {
    return objects_->ScanExtentPage(*tasks[t].class_name, tasks[t].page,
                                    tasks[t].cursor, ctx.snapshot,
                                    [&](Oid oid, const MoodValue&) {
                                      partial[t].push_back(oid);
                                      return Status::OK();
                                    });
  }));
  BatchAppender out(&bs, 1, ctx.batch);
  for (size_t c = 0; c < classes.size(); c++) {
    for (size_t t = class_tasks[c].first; t < class_tasks[c].second; t++) {
      for (Oid o : partial[t]) out.Push(&o, 1);
    }
    MOOD_RETURN_IF_ERROR(objects_->SnapshotLeftovers(classes[c], ctx.snapshot,
                                                     [&](Oid oid, const MoodValue&) {
                                                       out.Push(&oid, 1);
                                                       return Status::OK();
                                                     }));
  }
  return bs;
}

Result<BatchSet> Executor::ExecIndexSelectB(const PlanNode& node, Ctx& ctx) const {
  BatchSet bs;
  bs.vars = {node.from.var};
  MOOD_ASSIGN_OR_RETURN(std::vector<Oid> current, RunIndexProbes(node, ctx));
  BatchAppender out(&bs, 1, ctx.batch);
  for (Oid o : current) out.Push(&o, 1);
  return bs;
}

Status Executor::FilterBatch(const std::vector<ExprPtr>& preds,
                             const std::vector<ExprProgramPtr>& programs,
                             const std::vector<std::string>& vars, RowBatch* batch,
                             Ctx& ctx) const {
  if (batch->ActiveRows() == 0) return Status::OK();
  ExprProgram::BatchScratch scratch;
  scratch.params = ctx.params;
  BoundEnv benv;
  // Serial-equivalent error choice: the serial loop is row-outer, so the
  // surfaced error is the smallest row index that errors at its own first
  // failing predicate — a later predicate pass can still find a *smaller*
  // erroring row among the earlier survivors. Rows at or past the recorded
  // error row leave the selection (the serial loop never reached them).
  const uint32_t no_err = static_cast<uint32_t>(-1);
  uint32_t err_row = no_err;
  Status err;
  std::vector<uint32_t> survivors;
  for (size_t p = 0; p < preds.size(); p++) {
    const size_t n = batch->ActiveRows();
    if (n == 0) break;
    survivors.clear();
    if (programs[p] != nullptr) {
      programs[p]->EvalPredicateBatch(*batch, ctx.cache, &scratch);
      for (size_t k = 0; k < n; k++) {
        uint32_t row = batch->RowAt(k);
        if (row >= err_row) break;
        bool keep = false;
        switch (scratch.flags[k]) {
          case ExprProgram::kRowOk:
            keep = scratch.keep[k] != 0;
            break;
          case ExprProgram::kRowFallback: {
            CountRuntimeFallback();
            benv.BindRow(vars, *batch, row, ctx.cache, ctx.params);
            auto r = evaluator_->EvalPredicate(preds[p], benv.env);
            if (!r.ok()) {
              err_row = row;
              err = r.status();
            } else {
              keep = r.value();
            }
            break;
          }
          case ExprProgram::kRowError:
            err_row = row;
            err = scratch.errors[k];
            break;
        }
        if (keep && row < err_row) survivors.push_back(row);
      }
    } else {
      // Predicate the compiler refused: interpret the whole batch through the
      // hoisted env.
      for (size_t k = 0; k < n; k++) {
        uint32_t row = batch->RowAt(k);
        if (row >= err_row) break;
        benv.BindRow(vars, *batch, row, ctx.cache, ctx.params);
        auto r = evaluator_->EvalPredicate(preds[p], benv.env);
        if (!r.ok()) {
          err_row = row;
          err = r.status();
          break;
        }
        if (r.value()) survivors.push_back(row);
      }
    }
    batch->sel.assign(survivors.begin(), survivors.end());
    batch->sel_active = true;
  }
  if (err_row != no_err) return err;
  return Status::OK();
}

Result<BatchSet> Executor::ExecFilterB(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(BatchSet child, ExecB(node.child, ctx));
  std::vector<ExprProgramPtr> programs(node.predicates.size());
  for (size_t p = 0; p < node.predicates.size(); p++) {
    programs[p] = CompileExpr(node.predicates[p], child.vars, ctx);
  }
  // Whole batches are the morsel unit; each worker narrows its batch's
  // selection vector in place, so the morsel-order "merge" is the identity.
  if (ctx.profile != nullptr) ctx.profile->morsels = child.batches.size();
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, child.batches.size(), [&](size_t m) {
    return FilterBatch(node.predicates, programs, child.vars, &child.batches[m], ctx);
  }));
  return child;
}

Result<BatchSet> Executor::ExecPointerJoinB(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(BatchSet left, ExecB(node.left, ctx));
  MOOD_ASSIGN_OR_RETURN(BatchSet right, ExecB(node.right, ctx));
  int ref_idx = left.VarIndex(node.ref_var);
  int tgt_idx = right.VarIndex(node.target_var);
  if (ref_idx < 0 || tgt_idx < 0) {
    return Status::Internal("pointer join variables not bound by children");
  }
  BatchSet bs;
  bs.vars = left.vars;
  bs.vars.insert(bs.vars.end(), right.vars.begin(), right.vars.end());
  const size_t lcols = left.vars.size();
  const size_t ncols = bs.vars.size();

  // The build side is addressed globally through a flat live index, so batch
  // raggedness never shows in the probe results.
  std::vector<std::pair<uint32_t, uint32_t>> ridx = right.LiveIndex();
  std::unordered_map<uint64_t, std::vector<size_t>> right_by_oid;
  for (size_t i = 0; i < ridx.size(); i++) {
    Oid tgt = right.batches[ridx[i].first].col(static_cast<size_t>(tgt_idx))[ridx[i].second];
    right_by_oid[tgt.Pack()].push_back(i);
  }
  auto gather_right = [&](size_t r, Oid* row) {
    const RowBatch& rb = right.batches[ridx[r].first];
    for (size_t c = 0; c < rb.nslots; c++) row[lcols + c] = rb.col(c)[ridx[r].second];
  };

  bool use_bji = node.method == JoinMethod::kIndexed && node.ref_path.size() == 1;
  if (use_bji && ctx.snapshot.active() && node.left != nullptr) {
    // Same snapshot staleness rule as the row path: a BJI answers from the
    // latest refs, so live version chains on the left extent force the chase.
    MOOD_ASSIGN_OR_RETURN(bool stale,
                          SnapshotScanHasVersions(node.left->from, ctx.snapshot));
    if (stale) use_bji = false;
  }
  if (use_bji) {
    auto desc = objects_->catalog()->FindIndex(
        node.left ? node.left->from.class_name : "", node.ref_path[0],
        IndexKind::kBinaryJoin);
    if (desc.has_value()) {
      MOOD_ASSIGN_OR_RETURN(BinaryJoinIndex * bji, objects_->OpenJoinIndex(*desc));
      std::vector<std::pair<uint32_t, uint32_t>> lidx = left.LiveIndex();
      std::unordered_map<uint64_t, std::vector<size_t>> left_by_ref;
      for (size_t i = 0; i < lidx.size(); i++) {
        Oid ref =
            left.batches[lidx[i].first].col(static_cast<size_t>(ref_idx))[lidx[i].second];
        left_by_ref[ref.Pack()].push_back(i);
      }
      BatchAppender out(&bs, ncols, ctx.batch);
      std::vector<Oid> rowbuf(ncols);
      std::set<std::pair<size_t, size_t>> emitted;
      for (size_t r = 0; r < ridx.size(); r++) {
        Oid target =
            right.batches[ridx[r].first].col(static_cast<size_t>(tgt_idx))[ridx[r].second];
        MOOD_ASSIGN_OR_RETURN(auto sources, bji->Sources(target));
        for (Oid src : sources) {
          auto it = left_by_ref.find(src.Pack());
          if (it == left_by_ref.end()) continue;
          for (size_t l : it->second) {
            if (!emitted.insert({l, r}).second) continue;
            left.batches[lidx[l].first].GatherRow(lidx[l].second, rowbuf.data());
            gather_right(r, rowbuf.data());
            out.Push(rowbuf.data(), ncols);
          }
        }
      }
      return bs;
    }
  }

  // Chase path: one task per left batch. Output batches are ragged at task
  // boundaries — deterministic, because the input batch decomposition is.
  if (ctx.profile != nullptr) ctx.profile->morsels = left.batches.size();
  std::vector<BatchSet> partial(left.batches.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, left.batches.size(), [&](size_t m) {
    const RowBatch& lb = left.batches[m];
    BatchAppender out(&partial[m], ncols, ctx.batch);
    std::vector<Oid> rowbuf(ncols);
    for (size_t k = 0; k < lb.ActiveRows(); k++) {
      lb.GatherRow(lb.RowAt(k), rowbuf.data());
      Oid from = rowbuf[static_cast<size_t>(ref_idx)];
      MOOD_RETURN_IF_ERROR(ChaseRefs(from, node.ref_path, ctx.cache, [&](Oid reached) {
        auto it = right_by_oid.find(reached.Pack());
        if (it != right_by_oid.end()) {
          for (size_t r : it->second) {
            gather_right(r, rowbuf.data());
            out.Push(rowbuf.data(), ncols);
          }
        }
        return Status::OK();
      }));
    }
    return Status::OK();
  }));
  for (auto& part : partial) {
    for (auto& b : part.batches) bs.batches.push_back(std::move(b));
  }
  return bs;
}

Result<BatchSet> Executor::ExecNestedLoopB(const PlanNode& node, Ctx& ctx) const {
  MOOD_ASSIGN_OR_RETURN(BatchSet left, ExecB(node.left, ctx));
  MOOD_ASSIGN_OR_RETURN(BatchSet right, ExecB(node.right, ctx));
  BatchSet bs;
  bs.vars = left.vars;
  bs.vars.insert(bs.vars.end(), right.vars.begin(), right.vars.end());
  const size_t lcols = left.vars.size();
  const size_t ncols = bs.vars.size();
  ExprProgramPtr join_prog = CompileExpr(node.join_pred, bs.vars, ctx);
  std::vector<ExprPtr> preds;
  std::vector<ExprProgramPtr> progs;
  if (node.join_pred != nullptr) {
    preds.push_back(node.join_pred);
    progs.push_back(join_prog);
  }
  std::vector<std::pair<uint32_t, uint32_t>> ridx = right.LiveIndex();
  if (ctx.profile != nullptr) ctx.profile->morsels = left.batches.size();
  std::vector<BatchSet> partial(left.batches.size());
  MOOD_RETURN_IF_ERROR(ParallelFor(ctx.threads, left.batches.size(), [&](size_t m) {
    const RowBatch& lb = left.batches[m];
    BatchAppender out(&partial[m], ncols, ctx.batch);
    // Candidate (lrow, rrow) pairs accumulate into a transient combined batch;
    // each flush evaluates the join predicate batch-at-a-time and copies the
    // survivors out. Pairs are generated in the serial (lrow, rrow) order, so
    // batch boundaries never affect the results or the surfaced error.
    RowBatch pair(ncols, ctx.batch);
    std::vector<Oid> rowbuf(ncols);
    std::vector<Oid> outbuf(ncols);
    auto flush = [&]() -> Status {
      if (pair.nrows == 0) return Status::OK();
      if (!preds.empty()) {
        MOOD_RETURN_IF_ERROR(FilterBatch(preds, progs, bs.vars, &pair, ctx));
      }
      for (size_t k = 0; k < pair.ActiveRows(); k++) {
        pair.GatherRow(pair.RowAt(k), outbuf.data());
        out.Push(outbuf.data(), ncols);
      }
      pair.Clear();
      return Status::OK();
    };
    for (size_t k = 0; k < lb.ActiveRows(); k++) {
      lb.GatherRow(lb.RowAt(k), rowbuf.data());
      for (const auto& [rb, rrow] : ridx) {
        const RowBatch& rbatch = right.batches[rb];
        for (size_t c = 0; c < rbatch.nslots; c++) {
          rowbuf[lcols + c] = rbatch.col(c)[rrow];
        }
        pair.PushRow(rowbuf.data(), ncols);
        if (pair.Full()) MOOD_RETURN_IF_ERROR(flush());
      }
    }
    return flush();
  }));
  for (auto& part : partial) {
    for (auto& b : part.batches) bs.batches.push_back(std::move(b));
  }
  return bs;
}

Result<BatchSet> Executor::ExecUnionB(const PlanNode& node, Ctx& ctx) const {
  if (node.children.empty()) return BatchSet{};
  MOOD_ASSIGN_OR_RETURN(BatchSet first, ExecB(node.children[0], ctx));
  std::set<std::vector<uint64_t>> seen;
  BatchSet bs;
  bs.vars = first.vars;
  BatchAppender out(&bs, bs.vars.size(), ctx.batch);
  std::vector<Oid> aligned(bs.vars.size());
  std::vector<uint64_t> key(bs.vars.size());
  auto add = [&](const BatchSet& child) -> Status {
    std::vector<int> mapping(bs.vars.size());
    for (size_t i = 0; i < bs.vars.size(); i++) {
      mapping[i] = child.VarIndex(bs.vars[i]);
      if (mapping[i] < 0) {
        return Status::Internal("UNION children bind different range variables");
      }
    }
    for (const RowBatch& b : child.batches) {
      for (size_t k = 0; k < b.ActiveRows(); k++) {
        uint32_t row = b.RowAt(k);
        for (size_t i = 0; i < bs.vars.size(); i++) {
          aligned[i] = b.col(static_cast<size_t>(mapping[i]))[row];
          key[i] = aligned[i].Pack();
        }
        if (seen.insert(key).second) out.Push(aligned.data(), aligned.size());
      }
    }
    return Status::OK();
  };
  MOOD_RETURN_IF_ERROR(add(first));
  for (size_t c = 1; c < node.children.size(); c++) {
    MOOD_ASSIGN_OR_RETURN(BatchSet child, ExecB(node.children[c], ctx));
    MOOD_RETURN_IF_ERROR(add(child));
  }
  return bs;
}

Result<BatchSet> Executor::DispatchB(const PlanNode& node, Ctx& ctx) const {
  switch (node.op) {
    case PlanOp::kBindClass: return ExecBindB(node, ctx);
    case PlanOp::kIndexSelect: return ExecIndexSelectB(node, ctx);
    case PlanOp::kFilter: return ExecFilterB(node, ctx);
    case PlanOp::kPointerJoin: return ExecPointerJoinB(node, ctx);
    case PlanOp::kNestedLoopJoin: return ExecNestedLoopB(node, ctx);
    case PlanOp::kUnion: return ExecUnionB(node, ctx);
  }
  return Status::Internal("unknown plan operator");
}

Result<BatchSet> Executor::ExecB(const PlanPtr& plan, Ctx& ctx) const {
  if (ctx.profile == nullptr) {
    Result<BatchSet> result = DispatchB(*plan, ctx);
    if (result.ok()) {
      if (batch_batches_ != nullptr) batch_batches_->Add(result.value().batches.size());
      if (batch_rows_ != nullptr) batch_rows_->Add(result.value().ActiveRows());
    }
    return result;
  }
  QueryProfile* node = ctx.profile->AddChild(plan->Describe());
  node->est_rows = plan->est_rows;
  node->est_cost = plan->est_cost;
  node->has_estimates = true;
  BufferPoolStats before;
  if (ctx.pool != nullptr) before = ctx.pool->stats();
  uint64_t start = ProfileNowNs();
  Ctx sub = ctx;
  sub.profile = node;
  Result<BatchSet> result = DispatchB(*plan, sub);
  node->wall_ns = ProfileNowNs() - start;  // inclusive of children
  if (ctx.pool != nullptr) {
    BufferPoolStats after = ctx.pool->stats();
    node->pool.hits = after.hits - before.hits;
    node->pool.misses = after.misses - before.misses;
    node->pool.evictions = after.evictions - before.evictions;
    node->pool.prefetches = after.prefetches - before.prefetches;
  }
  if (result.ok()) {
    node->rows_out = result.value().ActiveRows();
    node->batches = result.value().batches.size();
    uint64_t in = 0;
    for (const auto& c : node->children) in += c->rows_out;
    node->rows_in = in;
    if (batch_batches_ != nullptr) batch_batches_->Add(result.value().batches.size());
    if (batch_rows_ != nullptr) batch_rows_->Add(result.value().ActiveRows());
  }
  return result;
}

Executor::Ctx Executor::MakeCtx(const ExecOptions& options) const {
  Ctx ctx;
  ctx.threads = options.threads == 0 ? threads_ : options.threads;
  ctx.batch = ClampBatchSize(options.batch_size == ExecOptions::kInheritBatch
                                 ? batch_size_
                                 : options.batch_size);
  ctx.profile = options.profile;
  ctx.compile = options.compile_expressions;
  ctx.params = options.params;
  ctx.program_memo = options.program_memo;
  ctx.snapshot = options.snapshot;
  ctx.bind_var = options.bind_var;
  ctx.bind_oids = options.bind_oids;
  if (options.profile != nullptr && objects_->storage() != nullptr) {
    ctx.pool = objects_->storage()->buffer_pool();
  }
  return ctx;
}

Result<RowSet> Executor::ExecutePlan(const PlanPtr& plan) const {
  return ExecutePlan(plan, ExecOptions{});
}

Result<RowSet> Executor::ExecutePlan(const PlanPtr& plan,
                                     const ExecOptions& options) const {
  size_t capacity = options.deref_cache_entries == ExecOptions::kInheritCache
                        ? deref_cache_capacity_
                        : options.deref_cache_entries;
  Ctx ctx = MakeCtx(options);
  // Bare-plan entry point: recover the range-variable declarations from the
  // plan's leaves so expressions still compile against static classes.
  std::map<std::string, FromEntry> range_vars;
  CollectRangeVars(*plan, &range_vars);
  ctx.range_vars = &range_vars;
  DerefCache cache(capacity);
  cache.SetSnapshot(ctx.snapshot);
  // A snapshot query keeps the (possibly capacity-0) cache attached anyway:
  // it is the conduit through which fetches see the version store.
  ctx.cache = capacity > 0 || ctx.snapshot.active() ? &cache : nullptr;
  Result<RowSet> result = [&]() -> Result<RowSet> {
    if (ctx.batch == 0) return Exec(plan, ctx);
    MOOD_ASSIGN_OR_RETURN(BatchSet bs, ExecB(plan, ctx));
    return FlattenBatches(bs);
  }();
  objects_->AccumulateDerefStats(cache.hits(), cache.misses());
  return result;
}

Result<QueryResult> Executor::FinishSelect(const SelectStmt& stmt, RowSet rows) const {
  DerefCache cache(deref_cache_capacity_);
  Ctx ctx;
  ctx.threads = threads_;
  ctx.cache = deref_cache_capacity_ > 0 ? &cache : nullptr;
  std::map<std::string, FromEntry> range_vars;
  for (const FromEntry& fe : stmt.from) range_vars.emplace(fe.var, fe);
  ctx.range_vars = &range_vars;
  Result<QueryResult> result = Finish(stmt, std::move(rows), ctx);
  objects_->AccumulateDerefStats(cache.hits(), cache.misses());
  return result;
}

Result<QueryResult> Executor::Finish(const SelectStmt& stmt, RowSet rows,
                                     Ctx& ctx) const {
  QueryProfile* prof = ctx.profile;
  // Compile the clause expressions once against the row layout; a null program
  // (or a runtime fallback) routes that expression through the interpreter.
  std::vector<ExprProgramPtr> group_progs(stmt.group_by.size());
  for (size_t g = 0; g < stmt.group_by.size(); g++) {
    group_progs[g] = CompileExpr(stmt.group_by[g], rows.vars, ctx);
  }
  ExprProgramPtr having_prog = CompileExpr(stmt.having, rows.vars, ctx);
  std::vector<ExprProgramPtr> order_progs(stmt.order_by.size());
  for (size_t o = 0; o < stmt.order_by.size(); o++) {
    order_progs[o] = CompileExpr(stmt.order_by[o].expr, rows.vars, ctx);
  }
  std::vector<ExprProgramPtr> proj_progs(stmt.projection.size());
  for (size_t p = 0; p < stmt.projection.size(); p++) {
    proj_progs[p] = CompileExpr(stmt.projection[p], rows.vars, ctx);
  }
  ExprProgram::Scratch scratch;
  scratch.params = ctx.params;
  auto eval_value = [&](const ExprPtr& e, const ExprProgramPtr& prog,
                        const RowSet& rset, const std::vector<Oid>& row,
                        std::optional<Evaluator::Env>& env) -> Result<MoodValue> {
    if (prog != nullptr) {
      bool need_fallback = false;
      auto r = prog->Eval(row.data(), row.size(), ctx.cache, &scratch, &need_fallback);
      if (!r.ok() || !need_fallback) return r;
      CountRuntimeFallback();
    }
    if (!env.has_value()) env = EnvOf(rset, row, ctx.cache, ctx.params);
    return evaluator_->Eval(e, env.value());
  };
  auto eval_pred = [&](const ExprPtr& e, const ExprProgramPtr& prog,
                       const RowSet& rset, const std::vector<Oid>& row,
                       std::optional<Evaluator::Env>& env) -> Result<bool> {
    if (prog != nullptr) {
      bool need_fallback = false;
      auto r = prog->EvalPredicate(row.data(), row.size(), ctx.cache, &scratch,
                                   &need_fallback);
      if (!r.ok() || !need_fallback) return r;
      CountRuntimeFallback();
    }
    if (!env.has_value()) env = EnvOf(rset, row, ctx.cache, ctx.params);
    return evaluator_->EvalPredicate(e, env.value());
  };

  // GROUP BY: keep one representative row per group key (MOODSQL has no
  // aggregate functions; grouping exposes one row per partition, matching the
  // algebra's Partition operator).
  if (!stmt.group_by.empty()) {
    StageSpan span = StageSpan::Begin(prof, "GROUP BY", rows.rows.size());
    std::map<std::string, std::vector<Oid>> groups;
    for (const auto& row : rows.rows) {
      std::optional<Evaluator::Env> env;
      std::string key;
      for (size_t g = 0; g < stmt.group_by.size(); g++) {
        MOOD_ASSIGN_OR_RETURN(
            MoodValue v, eval_value(stmt.group_by[g], group_progs[g], rows, row, env));
        v.EncodeTo(&key);
      }
      groups.emplace(std::move(key), row);
    }
    RowSet grouped;
    grouped.vars = rows.vars;
    for (auto& [key, row] : groups) grouped.rows.push_back(row);
    rows = std::move(grouped);
    span.End(rows.rows.size());
    if (stmt.having != nullptr) {
      StageSpan hspan = StageSpan::Begin(prof, "HAVING", rows.rows.size());
      RowSet kept;
      kept.vars = rows.vars;
      for (auto& row : rows.rows) {
        std::optional<Evaluator::Env> env;
        MOOD_ASSIGN_OR_RETURN(bool keep,
                              eval_pred(stmt.having, having_prog, rows, row, env));
        if (keep) kept.rows.push_back(std::move(row));
      }
      rows = std::move(kept);
      hspan.End(rows.rows.size());
    }
  }

  // ORDER BY before projection (keys may not be projected).
  if (!stmt.order_by.empty()) {
    StageSpan span = StageSpan::Begin(prof, "ORDER BY", rows.rows.size());
    struct Keyed {
      std::vector<MoodValue> keys;
      std::vector<Oid> row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(rows.rows.size());
    for (auto& row : rows.rows) {
      std::optional<Evaluator::Env> env;
      Keyed k;
      for (size_t o = 0; o < stmt.order_by.size(); o++) {
        MOOD_ASSIGN_OR_RETURN(
            MoodValue v,
            eval_value(stmt.order_by[o].expr, order_progs[o], rows, row, env));
        k.keys.push_back(std::move(v));
      }
      k.row = std::move(row);
      keyed.push_back(std::move(k));
    }
    Status cmp_error;
    std::stable_sort(keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
      for (size_t i = 0; i < stmt.order_by.size(); i++) {
        auto c = a.keys[i].Compare(b.keys[i]);
        if (!c.ok()) {
          if (cmp_error.ok()) cmp_error = c.status();
          return false;
        }
        if (c.value() != 0) {
          return stmt.order_by[i].ascending ? c.value() < 0 : c.value() > 0;
        }
      }
      return false;
    });
    MOOD_RETURN_IF_ERROR(cmp_error);
    rows.rows.clear();
    for (auto& k : keyed) rows.rows.push_back(std::move(k.row));
    span.End(rows.rows.size());
  }

  // Projection.
  StageSpan pspan = StageSpan::Begin(prof, "PROJECT", rows.rows.size());
  QueryResult result;
  for (const auto& p : stmt.projection) result.columns.push_back(p->ToString());
  for (const auto& row : rows.rows) {
    std::optional<Evaluator::Env> env;
    std::vector<MoodValue> out;
    out.reserve(stmt.projection.size());
    for (size_t p = 0; p < stmt.projection.size(); p++) {
      MOOD_ASSIGN_OR_RETURN(
          MoodValue v, eval_value(stmt.projection[p], proj_progs[p], rows, row, env));
      out.push_back(std::move(v));
    }
    result.rows.push_back(std::move(out));
  }
  pspan.End(result.rows.size());

  if (stmt.distinct) ApplyDistinct(&result, prof);
  return result;
}

void Executor::EvalColumn(const ExprPtr& e, const ExprProgramPtr& prog,
                          const BatchSet& bs, size_t limit, Ctx& ctx,
                          ExprProgram::BatchScratch* scratch,
                          std::vector<MoodValue>* out, size_t* err_row,
                          Status* err) const {
  // Evaluate one clause expression over every live row (in flat row order),
  // stopping at `limit` — rows the serial evaluation would never have reached
  // because an earlier expression already errored there.
  out->resize(bs.ActiveRows());
  *err_row = static_cast<size_t>(-1);
  BoundEnv benv;
  size_t base = 0;
  for (const RowBatch& b : bs.batches) {
    const size_t nb = b.ActiveRows();
    if (base >= limit) break;
    if (prog != nullptr) {
      prog->EvalBatch(b, ctx.cache, scratch);
      for (size_t k = 0; k < nb; k++) {
        size_t g = base + k;
        if (g >= limit) break;
        switch (scratch->flags[k]) {
          case ExprProgram::kRowOk:
            (*out)[g] = std::move(scratch->values[k]);
            break;
          case ExprProgram::kRowFallback: {
            CountRuntimeFallback();
            benv.BindRow(bs.vars, b, b.RowAt(k), ctx.cache, ctx.params);
            auto r = evaluator_->Eval(e, benv.env);
            if (!r.ok()) {
              *err_row = g;
              *err = r.status();
              return;
            }
            (*out)[g] = std::move(r).value();
            break;
          }
          case ExprProgram::kRowError:
            *err_row = g;
            *err = scratch->errors[k];
            return;
        }
      }
    } else {
      for (size_t k = 0; k < nb; k++) {
        size_t g = base + k;
        if (g >= limit) break;
        benv.BindRow(bs.vars, b, b.RowAt(k), ctx.cache, ctx.params);
        auto r = evaluator_->Eval(e, benv.env);
        if (!r.ok()) {
          *err_row = g;
          *err = r.status();
          return;
        }
        (*out)[g] = std::move(r).value();
      }
    }
    base += nb;
  }
}

Status Executor::EvalColumns(const std::vector<ExprPtr>& exprs,
                             const std::vector<ExprProgramPtr>& progs,
                             const BatchSet& bs, Ctx& ctx,
                             std::vector<std::vector<MoodValue>>* cols) const {
  // The serial loop is row-outer / expression-inner, so the surfaced error is
  // the minimum (row, expression index) pair. Column-wise evaluation recovers
  // it: each column records its first erroring row; a later column only wins
  // with a strictly smaller row (ties go to the earlier expression), and
  // `limit` keeps later columns from touching rows past the best error.
  cols->assign(exprs.size(), {});
  ExprProgram::BatchScratch scratch;
  scratch.params = ctx.params;
  size_t best_row = static_cast<size_t>(-1);
  Status best;
  for (size_t i = 0; i < exprs.size(); i++) {
    size_t err_row;
    Status err;
    EvalColumn(exprs[i], progs[i], bs, best_row, ctx, &scratch, &(*cols)[i], &err_row,
               &err);
    if (err_row < best_row) {
      best_row = err_row;
      best = err;
    }
  }
  if (best_row != static_cast<size_t>(-1)) return best;
  return Status::OK();
}

Result<QueryResult> Executor::FinishB(const SelectStmt& stmt, BatchSet rows,
                                      Ctx& ctx) const {
  QueryProfile* prof = ctx.profile;
  std::vector<ExprProgramPtr> group_progs(stmt.group_by.size());
  for (size_t g = 0; g < stmt.group_by.size(); g++) {
    group_progs[g] = CompileExpr(stmt.group_by[g], rows.vars, ctx);
  }
  ExprProgramPtr having_prog = CompileExpr(stmt.having, rows.vars, ctx);
  std::vector<ExprProgramPtr> order_progs(stmt.order_by.size());
  for (size_t o = 0; o < stmt.order_by.size(); o++) {
    order_progs[o] = CompileExpr(stmt.order_by[o].expr, rows.vars, ctx);
  }
  std::vector<ExprProgramPtr> proj_progs(stmt.projection.size());
  for (size_t p = 0; p < stmt.projection.size(); p++) {
    proj_progs[p] = CompileExpr(stmt.projection[p], rows.vars, ctx);
  }

  // Rebuild `rows` keeping only the flat live indices in `order`.
  auto repack = [&](const std::vector<size_t>& order) {
    std::vector<std::pair<uint32_t, uint32_t>> lidx = rows.LiveIndex();
    BatchSet next;
    next.vars = rows.vars;
    BatchAppender out(&next, rows.vars.size(), ctx.batch == 0 ? 1 : ctx.batch);
    std::vector<Oid> rowbuf(rows.vars.size());
    for (size_t i : order) {
      const RowBatch& b = rows.batches[lidx[i].first];
      b.GatherRow(lidx[i].second, rowbuf.data());
      out.Push(rowbuf.data(), rowbuf.size());
    }
    rows = std::move(next);
  };

  if (!stmt.group_by.empty()) {
    StageSpan span = StageSpan::Begin(prof, "GROUP BY", rows.ActiveRows());
    std::vector<std::vector<MoodValue>> keys;
    MOOD_RETURN_IF_ERROR(EvalColumns(stmt.group_by, group_progs, rows, ctx, &keys));
    std::map<std::string, size_t> groups;
    const size_t n = rows.ActiveRows();
    for (size_t i = 0; i < n; i++) {
      std::string key;
      for (size_t g = 0; g < stmt.group_by.size(); g++) keys[g][i].EncodeTo(&key);
      groups.emplace(std::move(key), i);
    }
    std::vector<size_t> order;
    order.reserve(groups.size());
    for (const auto& [key, i] : groups) order.push_back(i);
    repack(order);
    span.End(rows.ActiveRows());
    if (stmt.having != nullptr) {
      StageSpan hspan = StageSpan::Begin(prof, "HAVING", rows.ActiveRows());
      std::vector<ExprPtr> preds = {stmt.having};
      std::vector<ExprProgramPtr> progs = {having_prog};
      for (RowBatch& b : rows.batches) {
        MOOD_RETURN_IF_ERROR(FilterBatch(preds, progs, rows.vars, &b, ctx));
      }
      hspan.End(rows.ActiveRows());
    }
  }

  if (!stmt.order_by.empty()) {
    StageSpan span = StageSpan::Begin(prof, "ORDER BY", rows.ActiveRows());
    std::vector<ExprPtr> key_exprs;
    for (const auto& ob : stmt.order_by) key_exprs.push_back(ob.expr);
    std::vector<std::vector<MoodValue>> keys;
    MOOD_RETURN_IF_ERROR(EvalColumns(key_exprs, order_progs, rows, ctx, &keys));
    std::vector<size_t> order(rows.ActiveRows());
    for (size_t i = 0; i < order.size(); i++) order[i] = i;
    Status cmp_error;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t i = 0; i < stmt.order_by.size(); i++) {
        auto c = keys[i][a].Compare(keys[i][b]);
        if (!c.ok()) {
          if (cmp_error.ok()) cmp_error = c.status();
          return false;
        }
        if (c.value() != 0) {
          return stmt.order_by[i].ascending ? c.value() < 0 : c.value() > 0;
        }
      }
      return false;
    });
    MOOD_RETURN_IF_ERROR(cmp_error);
    repack(order);
    span.End(rows.ActiveRows());
  }

  StageSpan pspan = StageSpan::Begin(prof, "PROJECT", rows.ActiveRows());
  QueryResult result;
  for (const auto& p : stmt.projection) result.columns.push_back(p->ToString());
  std::vector<std::vector<MoodValue>> cols;
  MOOD_RETURN_IF_ERROR(EvalColumns(stmt.projection, proj_progs, rows, ctx, &cols));
  const size_t n = rows.ActiveRows();
  result.rows.reserve(n);
  for (size_t i = 0; i < n; i++) {
    std::vector<MoodValue> out;
    out.reserve(stmt.projection.size());
    for (size_t p = 0; p < stmt.projection.size(); p++) {
      out.push_back(std::move(cols[p][i]));
    }
    result.rows.push_back(std::move(out));
  }
  pspan.End(result.rows.size());

  if (stmt.distinct) ApplyDistinct(&result, prof);
  return result;
}

Result<QueryResult> Executor::ExecuteSelect(
    const QueryOptimizer::Optimized& optimized) const {
  return ExecuteSelect(optimized, ExecOptions{});
}

Result<QueryResult> Executor::ExecuteSelect(const QueryOptimizer::Optimized& optimized,
                                            const ExecOptions& options) const {
  size_t capacity = options.deref_cache_entries == ExecOptions::kInheritCache
                        ? deref_cache_capacity_
                        : options.deref_cache_entries;
  Ctx ctx = MakeCtx(options);
  // Compile against the plan's own leaves, not just the query's FROM list:
  // path-expansion plans introduce synthetic range variables (_t1, _t2, ...)
  // whose filters are exactly the hot predicates worth compiling.
  std::map<std::string, FromEntry> range_vars = optimized.bound.range_vars;
  if (optimized.plan != nullptr) CollectRangeVars(*optimized.plan, &range_vars);
  ctx.range_vars = &range_vars;
  // One Deref cache per query: objects dereferenced while executing the plan
  // stay warm for the projection/ORDER BY passes in Finish. Its hit/miss tally
  // folds into the engine-wide objects.deref_cache.* metrics when it dies.
  DerefCache cache(capacity);
  cache.SetSnapshot(ctx.snapshot);
  // Snapshot queries keep the cache attached even at capacity 0: it is the
  // conduit through which fetches consult the version store.
  ctx.cache = capacity > 0 || ctx.snapshot.active() ? &cache : nullptr;
  if (ctx.batch > 0) {
    Result<BatchSet> bs = ExecB(optimized.plan, ctx);
    if (!bs.ok()) {
      objects_->AccumulateDerefStats(cache.hits(), cache.misses());
      return bs.status();
    }
    Result<QueryResult> result =
        FinishB(optimized.bound.stmt, std::move(bs).value(), ctx);
    objects_->AccumulateDerefStats(cache.hits(), cache.misses());
    return result;
  }
  Result<RowSet> rows = Exec(optimized.plan, ctx);
  if (!rows.ok()) {
    objects_->AccumulateDerefStats(cache.hits(), cache.misses());
    return rows.status();
  }
  Result<QueryResult> result = Finish(optimized.bound.stmt, std::move(rows).value(), ctx);
  objects_->AccumulateDerefStats(cache.hits(), cache.misses());
  return result;
}

void Executor::AnnotateCompilation(
    PlanNode* plan, const std::map<std::string, FromEntry>& bound_vars) const {
  if (plan == nullptr) return;
  // Execution compiles against the plan's leaves too (synthetic _tN vars from
  // path expansion); annotate with the same environment.
  std::map<std::string, FromEntry> range_vars = bound_vars;
  CollectRangeVars(*plan, &range_vars);
  // Dry-run compiles only: no programs are kept and no exec.expr.* counters
  // move (EXPLAIN must not skew execution metrics).
  auto annotate = [&](const std::vector<ExprPtr>& exprs,
                      const std::vector<std::string>& vars) -> std::string {
    if (exprs.empty()) return "";
    ExprCompileEnv cenv = CompileEnvOf(vars, &range_vars);
    ExprCompiler compiler(objects_);
    size_t ok = 0;
    for (const auto& e : exprs) {
      if (compiler.Compile(e, cenv) != nullptr) ok++;
    }
    if (ok == exprs.size()) return "exprs: compiled";
    if (ok == 0) return "exprs: interpreted";
    return "exprs: mixed";
  };
  switch (plan->op) {
    case PlanOp::kFilter:
      plan->note = annotate(plan->predicates, plan->child->BoundVars());
      AnnotateCompilation(plan->child.get(), range_vars);
      break;
    case PlanOp::kNestedLoopJoin:
      if (plan->join_pred != nullptr) {
        plan->note = annotate({plan->join_pred}, plan->BoundVars());
      }
      AnnotateCompilation(plan->left.get(), range_vars);
      AnnotateCompilation(plan->right.get(), range_vars);
      break;
    case PlanOp::kPointerJoin:
      AnnotateCompilation(plan->left.get(), range_vars);
      AnnotateCompilation(plan->right.get(), range_vars);
      break;
    case PlanOp::kUnion:
      for (auto& c : plan->children) AnnotateCompilation(c.get(), range_vars);
      break;
    case PlanOp::kBindClass:
    case PlanOp::kIndexSelect:
      break;
  }
}

}  // namespace mood
