#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace mood {

/// Little-endian fixed-width and length-prefixed codecs used by every on-disk
/// structure (slotted pages, catalog records, index entries, WAL records).

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}
inline double DecodeDouble(const char* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutLengthPrefixedSlice(std::string* dst, Slice s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Cursor-style decoder over an input slice; each Get* consumes bytes and fails
/// with Corruption if the input is exhausted.
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input) {}

  Status GetFixed16(uint16_t* v) {
    if (input_.size() < 2) return Truncated("u16");
    *v = DecodeFixed16(input_.data());
    input_.remove_prefix(2);
    return Status::OK();
  }
  Status GetFixed32(uint32_t* v) {
    if (input_.size() < 4) return Truncated("u32");
    *v = DecodeFixed32(input_.data());
    input_.remove_prefix(4);
    return Status::OK();
  }
  Status GetFixed64(uint64_t* v) {
    if (input_.size() < 8) return Truncated("u64");
    *v = DecodeFixed64(input_.data());
    input_.remove_prefix(8);
    return Status::OK();
  }
  Status GetDouble(double* v) {
    if (input_.size() < 8) return Truncated("double");
    *v = DecodeDouble(input_.data());
    input_.remove_prefix(8);
    return Status::OK();
  }
  Status GetLengthPrefixedSlice(Slice* out) {
    uint32_t len = 0;
    MOOD_RETURN_IF_ERROR(GetFixed32(&len));
    if (input_.size() < len) return Truncated("bytes");
    *out = Slice(input_.data(), len);
    input_.remove_prefix(len);
    return Status::OK();
  }
  Status GetString(std::string* out) {
    Slice s;
    MOOD_RETURN_IF_ERROR(GetLengthPrefixedSlice(&s));
    *out = s.ToString();
    return Status::OK();
  }

  bool Empty() const { return input_.empty(); }
  size_t Remaining() const { return input_.size(); }
  Slice rest() const { return input_; }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input while decoding ") + what);
  }

  Slice input_;
};

}  // namespace mood
