#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

class CatalogFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db")));
    MOOD_ASSERT_OK(catalog_.Open(&storage_));
  }

  Catalog::ClassDef SimpleClass(const std::string& name,
                                std::vector<std::string> supers = {}) {
    Catalog::ClassDef def;
    def.name = name;
    def.supers = std::move(supers);
    def.attributes.push_back(
        {name + "_attr", TypeDesc::Basic(BasicType::kInteger)});
    return def;
  }

  TempDir dir_;
  StorageManager storage_;
  Catalog catalog_;
};

TEST_F(CatalogFixture, DefineAndLookup) {
  MOOD_ASSERT_OK_AND_ASSIGN(TypeId id, catalog_.Define(SimpleClass("Vehicle")));
  EXPECT_GE(id, kFirstUserTypeId);
  MOOD_ASSERT_OK_AND_ASSIGN(const MoodsType* t, catalog_.Lookup("Vehicle"));
  EXPECT_EQ(t->name, "Vehicle");
  EXPECT_TRUE(t->is_class);
  EXPECT_NE(t->extent_file, kInvalidFileId);
  MOOD_ASSERT_OK_AND_ASSIGN(const MoodsType* by_id, catalog_.Lookup(id));
  EXPECT_EQ(by_id, t);
  EXPECT_TRUE(catalog_.Lookup("Nope").status().IsNotFound());
}

TEST_F(CatalogFixture, TypeIdAndTypeNameKernelFunctions) {
  MOOD_ASSERT_OK_AND_ASSIGN(TypeId id, catalog_.Define(SimpleClass("Vehicle")));
  EXPECT_EQ(catalog_.typeId("Vehicle"), id);
  EXPECT_EQ(catalog_.typeName(id), "Vehicle");
  // Basic types have reserved ids.
  EXPECT_EQ(catalog_.typeId("Integer"), 1u);
  EXPECT_EQ(catalog_.typeName(1), "Integer");
  EXPECT_EQ(catalog_.typeName(6), "Boolean");
  EXPECT_EQ(catalog_.typeId("NoSuch"), kInvalidTypeId);
}

TEST_F(CatalogFixture, ValueTypesHaveNoExtent) {
  Catalog::ClassDef def = SimpleClass("Money");
  def.is_class = false;
  MOOD_ASSERT_OK(catalog_.Define(def).status());
  MOOD_ASSERT_OK_AND_ASSIGN(const MoodsType* t, catalog_.Lookup("Money"));
  EXPECT_FALSE(t->is_class);
  EXPECT_EQ(t->extent_file, kInvalidFileId);
  // Cannot inherit from a value type.
  EXPECT_FALSE(catalog_.Define(SimpleClass("Sub", {"Money"})).ok());
}

TEST_F(CatalogFixture, DuplicateDefinitionRejected) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Vehicle")).status());
  EXPECT_TRUE(catalog_.Define(SimpleClass("Vehicle")).status().IsAlreadyExists());
}

TEST_F(CatalogFixture, InheritedAttributesSupersFirst) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("A")).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("B", {"A"})).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("C", {"B"})).status());
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs, catalog_.AllAttributes("C"));
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].name, "A_attr");
  EXPECT_EQ(attrs[1].name, "B_attr");
  EXPECT_EQ(attrs[2].name, "C_attr");
}

TEST_F(CatalogFixture, MultipleInheritance) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Left")).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Right")).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Both", {"Left", "Right"})).status());
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs, catalog_.AllAttributes("Both"));
  EXPECT_EQ(attrs.size(), 3u);
  EXPECT_TRUE(catalog_.IsSubclassOf("Both", "Left"));
  EXPECT_TRUE(catalog_.IsSubclassOf("Both", "Right"));
  EXPECT_FALSE(catalog_.IsSubclassOf("Left", "Both"));
}

TEST_F(CatalogFixture, DiamondAttributeConflictRejected) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Base")).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("L", {"Base"})).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("R", {"Base"})).status());
  // Base_attr would be inherited twice.
  auto res = catalog_.Define(SimpleClass("D", {"L", "R"}));
  EXPECT_FALSE(res.ok());
}

TEST_F(CatalogFixture, MethodResolutionIsBottomUp) {
  Catalog::ClassDef base = SimpleClass("Base");
  MoodsFunction f;
  f.name = "speak";
  f.return_type = TypeDesc::Basic(BasicType::kString);
  f.body_source = "base";
  base.methods.push_back(f);
  MOOD_ASSERT_OK(catalog_.Define(base).status());

  Catalog::ClassDef derived = SimpleClass("Derived", {"Base"});
  f.body_source = "derived";
  derived.methods.push_back(f);
  MOOD_ASSERT_OK(catalog_.Define(derived).status());

  MOOD_ASSERT_OK_AND_ASSIGN(auto from_derived, catalog_.ResolveFunction("Derived", "speak"));
  EXPECT_EQ(from_derived.first, "Derived");
  EXPECT_EQ(from_derived.second->body_source, "derived");
  MOOD_ASSERT_OK_AND_ASSIGN(auto from_base, catalog_.ResolveFunction("Base", "speak"));
  EXPECT_EQ(from_base.first, "Base");
  // An unrelated method is NotFound.
  EXPECT_TRUE(catalog_.ResolveFunction("Derived", "fly").status().IsNotFound());
}

TEST_F(CatalogFixture, SubtreeClassesAndSubclasses) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Vehicle")).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Auto", {"Vehicle"})).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Japanese", {"Auto"})).status());
  MOOD_ASSERT_OK_AND_ASSIGN(auto subs, catalog_.Subclasses("Vehicle"));
  EXPECT_EQ(subs, std::vector<std::string>{"Auto"});
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree, catalog_.SubtreeClasses("Vehicle"));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree[0], "Vehicle");
}

TEST_F(CatalogFixture, DropRules) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("A")).status());
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("B", {"A"})).status());
  // A has a subclass: refuse.
  EXPECT_FALSE(catalog_.Drop("A").ok());
  MOOD_ASSERT_OK(catalog_.Drop("B"));
  MOOD_ASSERT_OK(catalog_.Drop("A"));
  EXPECT_TRUE(catalog_.Lookup("A").status().IsNotFound());
}

TEST_F(CatalogFixture, DynamicSchemaChanges) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("C")).status());
  MOOD_ASSERT_OK(catalog_.AddAttribute("C", {"extra", TypeDesc::Basic(BasicType::kFloat)}));
  EXPECT_TRUE(catalog_
                  .AddAttribute("C", {"extra", TypeDesc::Basic(BasicType::kFloat)})
                  .IsAlreadyExists());
  MOOD_ASSERT_OK(catalog_.RenameAttribute("C", "extra", "renamed"));
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs, catalog_.AllAttributes("C"));
  EXPECT_EQ(attrs.back().name, "renamed");
  MOOD_ASSERT_OK(catalog_.DropAttribute("C", "renamed"));
  MOOD_ASSERT_OK_AND_ASSIGN(auto attrs2, catalog_.AllAttributes("C"));
  EXPECT_EQ(attrs2.size(), 1u);

  MoodsFunction fn;
  fn.name = "m";
  fn.return_type = TypeDesc::Basic(BasicType::kInteger);
  MOOD_ASSERT_OK(catalog_.AddFunction("C", fn));
  MOOD_ASSERT_OK(catalog_.UpdateFunctionBody("C", "m", "{ return 1; }"));
  MOOD_ASSERT_OK_AND_ASSIGN(const MoodsType* t, catalog_.Lookup("C"));
  EXPECT_EQ(t->FindFunction("m")->body_source, "{ return 1; }");
  MOOD_ASSERT_OK(catalog_.DropFunction("C", "m"));
  EXPECT_EQ(t->FindFunction("m"), nullptr);
}

TEST_F(CatalogFixture, IndexRegistry) {
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("C")).status());
  IndexDesc desc;
  desc.name = "idx1";
  desc.class_name = "C";
  desc.attribute = "C_attr";
  desc.kind = IndexKind::kBTree;
  desc.meta1 = 42;
  MOOD_ASSERT_OK(catalog_.RegisterIndex(desc));
  EXPECT_TRUE(catalog_.RegisterIndex(desc).IsAlreadyExists());
  auto found = catalog_.FindIndex("C", "C_attr", IndexKind::kBTree);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->meta1, 42u);
  EXPECT_FALSE(catalog_.FindIndex("C", "C_attr", IndexKind::kHash).has_value());
  EXPECT_EQ(catalog_.IndexesOn("C").size(), 1u);
  MOOD_ASSERT_OK(catalog_.UnregisterIndex("idx1"));
  EXPECT_TRUE(catalog_.UnregisterIndex("idx1").IsNotFound());
}

TEST_F(CatalogFixture, NamedObjects) {
  Oid oid{3, 14, 15};
  MOOD_ASSERT_OK(catalog_.BindName("my_car", oid));
  MOOD_ASSERT_OK_AND_ASSIGN(Oid back, catalog_.LookupName("my_car"));
  EXPECT_EQ(back, oid);
  EXPECT_EQ(catalog_.AllNamedObjects().size(), 1u);
  MOOD_ASSERT_OK(catalog_.UnbindName("my_car"));
  EXPECT_TRUE(catalog_.LookupName("my_car").status().IsNotFound());
}

TEST_F(CatalogFixture, FunctionSignatureFormat) {
  MoodsFunction f;
  f.name = "scale";
  f.return_type = TypeDesc::Basic(BasicType::kInteger);
  f.params.push_back({"factor", TypeDesc::Basic(BasicType::kInteger)});
  f.params.push_back({"rate", TypeDesc::Basic(BasicType::kFloat)});
  EXPECT_EQ(f.Signature("Vehicle"), "Vehicle::scale(Integer,Float)");
}

TEST_F(CatalogFixture, PersistsEverythingAcrossReopen) {
  Catalog::ClassDef def = SimpleClass("Vehicle");
  MoodsFunction fn;
  fn.name = "go";
  fn.return_type = TypeDesc::Basic(BasicType::kBoolean);
  fn.params.push_back({"speed", TypeDesc::Basic(BasicType::kInteger)});
  fn.body_source = "{ return true; }";
  def.methods.push_back(fn);
  def.attributes.push_back({"refs", TypeDesc::Set(TypeDesc::Reference("Vehicle"))});
  MOOD_ASSERT_OK_AND_ASSIGN(TypeId id, catalog_.Define(def));
  MOOD_ASSERT_OK(catalog_.Define(SimpleClass("Auto", {"Vehicle"})).status());
  IndexDesc desc;
  desc.name = "byattr";
  desc.class_name = "Vehicle";
  desc.attribute = "Vehicle_attr";
  desc.meta1 = 9;
  MOOD_ASSERT_OK(catalog_.RegisterIndex(desc));
  MOOD_ASSERT_OK(catalog_.BindName("flagship", Oid{1, 2, 3}));

  MOOD_ASSERT_OK(storage_.Close());
  StorageManager storage2;
  MOOD_ASSERT_OK(storage2.Open(dir_.Path("db")));
  Catalog catalog2;
  MOOD_ASSERT_OK(catalog2.Open(&storage2));

  MOOD_ASSERT_OK_AND_ASSIGN(const MoodsType* t, catalog2.Lookup("Vehicle"));
  EXPECT_EQ(t->id, id);
  EXPECT_EQ(t->own_attributes.size(), 2u);
  EXPECT_TRUE(t->own_attributes[1].type->Equals(
      *TypeDesc::Set(TypeDesc::Reference("Vehicle"))));
  ASSERT_NE(t->FindFunction("go"), nullptr);
  EXPECT_EQ(t->FindFunction("go")->body_source, "{ return true; }");
  EXPECT_TRUE(catalog2.IsSubclassOf("Auto", "Vehicle"));
  EXPECT_TRUE(catalog2.FindIndex("Vehicle", "Vehicle_attr", IndexKind::kBTree).has_value());
  MOOD_ASSERT_OK_AND_ASSIGN(Oid flagship, catalog2.LookupName("flagship"));
  EXPECT_EQ(flagship, (Oid{1, 2, 3}));
  // New definitions continue from the persisted id space.
  MOOD_ASSERT_OK_AND_ASSIGN(TypeId id2, catalog2.Define(SimpleClass("Fresh")));
  EXPECT_GT(id2, id);
}

}  // namespace
}  // namespace mood
