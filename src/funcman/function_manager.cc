#include "funcman/function_manager.h"

#include "obs/metrics.h"

namespace mood {

Result<MoodValue> MethodContext::Attr(const std::string& name) const {
  if (self_value == nullptr || attr_names == nullptr) {
    return Status::FunctionError("method context has no receiver");
  }
  for (size_t i = 0; i < attr_names->size(); i++) {
    if ((*attr_names)[i] == name) {
      MOOD_ASSIGN_OR_RETURN(const MoodValue* f, self_value->Field(i));
      return *f;
    }
  }
  return Status::FunctionError("receiver has no attribute '" + name + "'");
}

std::mutex& FunctionManager::ClassLatch(const std::string& class_name) {
  std::lock_guard<std::mutex> lock(latch_map_mu_);
  return class_latches_[class_name];
}

Status FunctionManager::Register(const std::string& class_name,
                                 const MoodsFunction& decl, NativeFunction body) {
  std::lock_guard<std::mutex> lock(ClassLatch(class_name));
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  if (type->FindFunction(decl.name) == nullptr) {
    MOOD_RETURN_IF_ERROR(catalog_->AddFunction(class_name, decl));
  }
  std::string sig = decl.Signature(class_name);
  if (registry_.count(sig)) {
    return Status::AlreadyExists("function already registered: " + sig);
  }
  registry_[sig] = std::move(body);
  return Status::OK();
}

Status FunctionManager::Update(const std::string& class_name, const std::string& fname,
                               NativeFunction body) {
  std::lock_guard<std::mutex> lock(ClassLatch(class_name));
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  const MoodsFunction* decl = type->FindFunction(fname);
  if (decl == nullptr) {
    return Status::NotFound("no method '" + fname + "' on '" + class_name + "'");
  }
  std::string sig = decl->Signature(class_name);
  auto it = registry_.find(sig);
  if (it == registry_.end()) {
    return Status::NotFound("no compiled body for " + sig);
  }
  it->second = std::move(body);
  {
    std::lock_guard<std::mutex> lock(loaded_mu_);
    loaded_.erase(sig);  // force a reload: the shared object was rewritten
  }
  return Status::OK();
}

Status FunctionManager::Remove(const std::string& class_name,
                               const std::string& fname) {
  std::lock_guard<std::mutex> lock(ClassLatch(class_name));
  MOOD_ASSIGN_OR_RETURN(const MoodsType* type, catalog_->Lookup(class_name));
  const MoodsFunction* decl = type->FindFunction(fname);
  if (decl == nullptr) {
    return Status::NotFound("no method '" + fname + "' on '" + class_name + "'");
  }
  std::string sig = decl->Signature(class_name);
  registry_.erase(sig);
  {
    std::lock_guard<std::mutex> lock(loaded_mu_);
    loaded_.erase(sig);
  }
  return catalog_->DropFunction(class_name, fname);
}

Result<MoodValue> FunctionManager::Invoke(const std::string& class_name,
                                          const std::string& fname,
                                          const MethodContext& ctx,
                                          std::vector<MoodValue> args) {
  // Late binding: resolve the method bottom-up from the receiver's class.
  auto resolved = catalog_->ResolveFunction(class_name, fname);
  if (!resolved.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::FunctionError(resolved.status().message());
  }
  const auto& [defining_class, decl] = resolved.value();

  // Run-time parameter type checking.
  if (args.size() != decl->params.size()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::FunctionError(
        "method '" + fname + "' expects " + std::to_string(decl->params.size()) +
        " argument(s), got " + std::to_string(args.size()));
  }
  for (size_t i = 0; i < args.size(); i++) {
    Status st = decl->params[i].type->CheckValue(args[i]);
    if (!st.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return Status::FunctionError("argument '" + decl->params[i].name +
                                   "': " + st.message());
    }
  }

  // Build the signature and locate the compiled body in the CATALOG/registry.
  std::string sig = decl->Signature(defining_class);
  const NativeFunction* fn = nullptr;
  {
    std::lock_guard<std::mutex> lock(loaded_mu_);
    auto loaded_it = loaded_.find(sig);
    if (loaded_it != loaded_.end()) {
      warm_calls_.fetch_add(1, std::memory_order_relaxed);
      fn = loaded_it->second;
    } else {
      auto reg_it = registry_.find(sig);
      if (reg_it != registry_.end()) {
        // "Shared Object File of the Class is opened and the function is loaded
        // into memory."
        cold_loads_.fetch_add(1, std::memory_order_relaxed);
        loaded_[sig] = &reg_it->second;
        fn = &reg_it->second;
      }
    }
  }

  Result<MoodValue> result = MoodValue::Null();
  if (fn != nullptr) {
    result = (*fn)(ctx, args);
  } else if (fallback_) {
    fallback_calls_.fetch_add(1, std::memory_order_relaxed);
    result = fallback_(defining_class, *decl, ctx, args);
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::FunctionError("no compiled body for " + sig +
                                 " and no interpreter fallback installed");
  }

  if (!result.ok()) {
    // The Exception class: system errors of compiled functions are surfaced as
    // interpreter-style errors.
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::FunctionError(sig + ": " + result.status().message());
  }
  Status st = decl->return_type->CheckValue(result.value());
  if (!st.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::FunctionError(sig + " returned ill-typed value: " + st.message());
  }
  return result;
}

void FunctionManager::UnloadAll() {
  std::lock_guard<std::mutex> lock(loaded_mu_);
  loaded_.clear();
}

void FunctionManager::RegisterMetrics(MetricsRegistry* registry) const {
  registry->RegisterProbe(
      "funcman", [this](std::vector<std::pair<std::string, double>>* out) {
        InvokeStats s = stats();
        out->emplace_back("funcman.cold_loads", static_cast<double>(s.cold_loads));
        out->emplace_back("funcman.warm_calls", static_cast<double>(s.warm_calls));
        out->emplace_back("funcman.fallback_calls",
                          static_cast<double>(s.fallback_calls));
        out->emplace_back("funcman.errors", static_cast<double>(s.errors));
        out->emplace_back("funcman.registered",
                          static_cast<double>(registered_count()));
        out->emplace_back("funcman.loaded", static_cast<double>(loaded_count()));
      });
}

}  // namespace mood
