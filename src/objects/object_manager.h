#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "index/bptree.h"
#include "index/hash_index.h"
#include "index/join_index.h"
#include "storage/storage_manager.h"
#include "types/value.h"

namespace mood {

/// Object-level storage interface: creates, fetches, updates and deletes class
/// instances in their default extents, maintains registered secondary indexes,
/// and implements dereferencing and deep equality — the object layer the MOOD
/// kernel builds over the storage manager.
class ObjectManager {
 public:
  ObjectManager(StorageManager* storage, Catalog* catalog)
      : storage_(storage), catalog_(catalog) {}

  /// Creates an instance of `class_name` from a tuple whose fields follow
  /// Catalog::AllAttributes order. Type-checks against the class schema, inserts
  /// into the class extent and maintains indexes. A tuple shorter than the schema
  /// is padded with attribute defaults (supports schema evolution via
  /// AddAttribute).
  Result<Oid> CreateObject(const std::string& class_name, MoodValue tuple,
                           PageWriteLogger* wal = nullptr);

  /// The algebra's Deref(oid) operator.
  Result<MoodValue> Fetch(Oid oid) const;

  /// Class name of the object (the algebra's TypeId/isA support). Derived from
  /// the type id stored with every object.
  Result<std::string> ClassOf(Oid oid) const;

  /// Replaces the whole attribute tuple (type-checked; indexes maintained).
  Status UpdateObject(Oid oid, MoodValue tuple, PageWriteLogger* wal = nullptr);

  /// Sets one attribute by name.
  Status SetAttribute(Oid oid, const std::string& attr, MoodValue value,
                      PageWriteLogger* wal = nullptr);

  Status DeleteObject(Oid oid, PageWriteLogger* wal = nullptr);

  /// Attribute of an object by name (inherited attributes included).
  Result<MoodValue> GetAttribute(Oid oid, const std::string& attr) const;

  /// Scans a class extent. `include_subclasses` adds every transitive subclass
  /// extent (the EVERY form); `exclude` removes the subtrees of the listed
  /// subclasses (the `-` operator in FROM).
  Status ScanExtent(const std::string& class_name, bool include_subclasses,
                    const std::vector<std::string>& exclude,
                    const std::function<Status(Oid, const MoodValue&)>& fn) const;

  /// The classes whose own extents a ScanExtent over the same arguments visits,
  /// in visit order (subtree expansion minus excluded subtrees).
  Result<std::vector<std::string>> ScanClasses(
      const std::string& class_name, bool include_subclasses,
      const std::vector<std::string>& exclude) const;

  /// Page ids of one class's own extent, in scan (chain) order. Together with
  /// ScanExtentPage this partitions ScanExtent into page-granular morsels:
  /// scanning the listed pages in order yields exactly ScanExtent's sequence.
  Result<std::vector<PageId>> ExtentPageIds(const std::string& class_name) const;

  /// Scans the records homed on one extent page (same decode and forwarding
  /// semantics as ScanExtent). Concurrent-read safe for distinct or identical
  /// pages while no writer mutates the extent.
  Status ScanExtentPage(const std::string& class_name, PageId page,
                        const std::function<Status(Oid, const MoodValue&)>& fn) const;

  /// |C| for one class (own extent only or with subclasses).
  Result<uint64_t> ExtentCount(const std::string& class_name,
                               bool include_subclasses) const;
  /// nbpages(C) of the class's own extent.
  Result<uint32_t> ExtentPages(const std::string& class_name) const;

  /// Deep (value) equality following references, with cycle protection. Used by
  /// DupElim on extents ("deep equality check", Table 3).
  Result<bool> DeepEquals(const MoodValue& a, const MoodValue& b) const;

  // --- Index creation & access -------------------------------------------------

  /// Builds a B+-tree (or hash) index over `attribute` of `class_name`, bulk
  /// loading existing objects, and registers it in the catalog.
  Status CreateAttributeIndex(const std::string& index_name,
                              const std::string& class_name,
                              const std::string& attribute, IndexKind kind,
                              bool unique = false);

  /// Builds a binary join index over reference attribute `attribute`.
  Status CreateBinaryJoinIndex(const std::string& index_name,
                               const std::string& class_name,
                               const std::string& attribute);

  /// Builds a path index for `path` (dotted attribute chain from `class_name`
  /// ending in an atomic attribute).
  Status CreatePathIndex(const std::string& index_name, const std::string& class_name,
                         const std::string& path);

  /// Opens (cached) handles to registered indexes.
  Result<BPlusTree*> OpenBTree(const IndexDesc& desc);
  Result<HashIndex*> OpenHash(const IndexDesc& desc);
  Result<BinaryJoinIndex*> OpenJoinIndex(const IndexDesc& desc);
  Result<PathIndex*> OpenPathIndex(const IndexDesc& desc);

  /// Follows a dotted path from a root object to its terminal values. Set/list
  /// valued reference attributes fan out. The callback receives each terminal
  /// value reached.
  Status TraversePath(Oid root, const std::vector<std::string>& path,
                      const std::function<Status(const MoodValue&)>& fn) const;

  Catalog* catalog() const { return catalog_; }
  StorageManager* storage() const { return storage_; }

 private:
  Result<HeapFile*> ExtentOf(const std::string& class_name) const;
  Result<MoodValue> PadToSchema(const std::string& class_name, MoodValue tuple) const;

  /// Applies index maintenance for one object transition old -> new (either may
  /// be null for insert/delete).
  Status MaintainIndexes(const std::string& class_name, Oid oid,
                         const MoodValue* old_tuple, const MoodValue* new_tuple);

  Result<int> AttrIndex(const std::string& class_name, const std::string& attr) const;

  Result<bool> DeepEqualsRec(const MoodValue& a, const MoodValue& b,
                             std::vector<std::pair<uint64_t, uint64_t>>* visiting) const;

  StorageManager* storage_;
  Catalog* catalog_;
  /// Guards the lazily-populated index-handle caches below: parallel workers
  /// may race to open the same index (e.g. concurrent IndSel probes). The
  /// handles themselves are concurrent-read safe once opened.
  mutable std::mutex index_cache_mu_;
  mutable std::unordered_map<std::string, std::unique_ptr<BPlusTree>> btrees_;
  mutable std::unordered_map<std::string, std::unique_ptr<HashIndex>> hashes_;
  mutable std::unordered_map<std::string, std::unique_ptr<BinaryJoinIndex>> bjis_;
  mutable std::unordered_map<std::string, std::unique_ptr<PathIndex>> path_indexes_;
};

/// Encodes an object record: [type_id u32][tuple value bytes].
void EncodeObjectRecord(TypeId type_id, const MoodValue& tuple, std::string* dst);
Result<std::pair<TypeId, MoodValue>> DecodeObjectRecord(Slice record);

}  // namespace mood
