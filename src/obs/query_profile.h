#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mood {

/// Buffer-pool activity attributed to one profiled operator: the difference of
/// two aggregate BufferPool stats samples taken around the operator's
/// execution (inclusive of its children — operators execute depth-first, so a
/// parent's delta contains its subtree's).
struct PoolDelta {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetches = 0;

  PoolDelta& operator+=(const PoolDelta& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    prefetches += o.prefetches;
    return *this;
  }
};

/// Per-operator execution profile: one node per physical plan operator (plus
/// one node per Finish stage — GROUP BY / ORDER BY / PROJECT / DISTINCT — and
/// a RESULT root). The tree mirrors the plan, so EXPLAIN ANALYZE renders
/// estimated and actual columns side by side.
///
/// Determinism contract: every field except `wall_ns` and `pool` is a pure
/// function of the query and the data — morsel workers accumulate into
/// per-morsel partials that the executor folds in morsel order, so
/// `rows_in`/`rows_out`/`morsels`/`batches` are identical at any thread count.
/// Render(timing=false) emits only the deterministic fields (what the
/// golden-shape tests compare across exec_threads ∈ {1,2,8}).
struct QueryProfile {
  /// One-line operator description (PlanNode::Describe or a stage name).
  std::string label;

  // Optimizer estimates copied from the plan node (0 for Finish stages).
  double est_rows = 0;
  double est_cost = 0;
  bool has_estimates = false;

  // Actuals.
  uint64_t rows_in = 0;    ///< rows consumed from children (0 for leaves)
  uint64_t rows_out = 0;   ///< rows produced
  uint64_t morsels = 0;    ///< parallel work units dispatched (0 = inline)
  uint64_t batches = 0;    ///< RowBatches produced (0 = row-at-a-time mode)
  uint64_t wall_ns = 0;    ///< inclusive wall time on the coordinating thread
  PoolDelta pool;          ///< inclusive buffer-pool delta

  std::vector<std::unique_ptr<QueryProfile>> children;

  QueryProfile* AddChild(std::string label);

  /// Sum of wall_ns over direct children (for exclusive-time rendering).
  uint64_t ChildWallNs() const;

  struct RenderOptions {
    bool timing = true;   ///< include wall times (volatile across runs)
    bool buffer = true;   ///< include buffer-pool deltas (volatile: cache state)
    int indent = 0;
  };

  /// Indented tree rendering:
  ///   SELECT v.company.name = 'BMW'  (est rows=12.0 cost=1.402) (actual rows=10 in=800 morsels=4) [q=1.20] [time=0.41ms] [pool hits=52 misses=3]
  /// `q` is the cardinality q-error max(est/actual, actual/est) when both are
  /// positive — the estimated-vs-actual check stats_cost_test-style assertions
  /// read.
  std::string Render(const RenderOptions& options) const;
  std::string Render() const { return Render(RenderOptions{}); }

  /// JSON object mirroring Render()'s fields (children nested under
  /// "children"). The timing/buffer flags gate the volatile fields exactly as
  /// in the text rendering.
  std::string ToJson(const RenderOptions& options) const;
  std::string ToJson() const { return ToJson(RenderOptions{}); }
};

/// Steady-clock nanosecond stamp for profile timing.
inline uint64_t ProfileNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace mood
