#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/dnf.h"

namespace mood {

/// A path expression resolved against the schema: the class chain it traverses
/// and the type it terminates in. This is the unit the optimizer's selectivity
/// and traversal-cost formulas (Section 4.1) operate on.
struct BoundPath {
  std::string range_var;
  std::vector<PathStep> steps;

  /// classes[i] is the class context before step i; classes.size() == steps.size()+1.
  /// The final entry is the class reached after the last reference step (for a
  /// path ending in an atomic attribute, the class owning that attribute... i.e.
  /// classes[steps.size()-1]); for reference-terminated paths it is the referenced
  /// class.
  std::vector<std::string> classes;

  /// Marks steps that resolved to methods rather than attributes.
  std::vector<bool> step_is_method;

  /// Static type of the path's terminal value (null for `.self`).
  TypeDescPtr terminal_type;

  /// True when the path is `v` or `v.self`: denotes the object itself.
  bool is_self = false;

  /// True if any step fans out through a Set/List of references.
  bool fans_out = false;

  /// Number of reference hops (implicit joins) in the path.
  size_t RefHops() const { return classes.size() - 1; }

  bool IsTerminalRef() const {
    return terminal_type != nullptr &&
           terminal_type->kind() == ConstructorKind::kReference;
  }
  bool IsTerminalAtomic() const {
    return terminal_type != nullptr && terminal_type->kind() == ConstructorKind::kBasic;
  }

  /// The isA(path) operator: class name of the last attribute's class context.
  const std::string& TerminalClass() const { return classes.back(); }

  std::string ToString() const;
};

/// A bound SELECT: range variables resolved, WHERE/HAVING normalized to DNF.
struct BoundQuery {
  SelectStmt stmt;
  /// Range variable -> FROM entry, plus positional order.
  std::map<std::string, FromEntry> range_vars;
  std::vector<std::string> var_order;
  std::vector<AndTerm> where_dnf;   // empty: no WHERE
  std::vector<AndTerm> having_dnf;  // empty: no HAVING
};

/// Semantic analysis: resolves names against the catalog and validates types.
class Binder {
 public:
  explicit Binder(Catalog* catalog) : catalog_(catalog) {}

  Result<BoundQuery> Bind(const SelectStmt& stmt) const;

  /// Resolves one path expression given the query's range variables.
  Result<BoundPath> ResolvePath(const BoundQuery& query, const Expr& path) const;

  /// Resolves a dotted path string starting from a known class (used by path
  /// indexes and the object browser).
  Result<BoundPath> ResolvePathFromClass(const std::string& class_name,
                                         const std::vector<std::string>& steps) const;

 private:
  Result<BoundPath> ResolveSteps(const std::string& var, const std::string& root_class,
                                 const std::vector<PathStep>& steps) const;

  Catalog* catalog_;
};

}  // namespace mood
