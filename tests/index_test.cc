#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "index/bptree.h"
#include "index/hash_index.h"
#include "index/join_index.h"
#include "index/key_codec.h"
#include "index/rtree.h"
#include "storage/storage_manager.h"
#include "tests/test_util.h"

namespace mood {
namespace {

using testing::TempDir;

class IndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    StorageOptions opts;
    opts.pool_pages = 512;
    MOOD_ASSERT_OK(storage_.Open(dir_.Path("db"), opts));
  }
  TempDir dir_;
  StorageManager storage_;
};

TEST(KeyCodecTest, IntegerOrderPreserved) {
  std::vector<int32_t> values = {-2000000, -5, -1, 0, 1, 7, 2000000};
  for (size_t i = 0; i + 1 < values.size(); i++) {
    std::string a = MakeIndexKey(MoodValue::Integer(values[i]));
    std::string b = MakeIndexKey(MoodValue::Integer(values[i + 1]));
    EXPECT_LT(Slice(a).compare(Slice(b)), 0) << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyCodecTest, DoubleOrderPreserved) {
  std::vector<double> values = {-1e30, -2.5, -0.0, 0.0, 1e-10, 3.25, 1e30};
  for (size_t i = 0; i + 1 < values.size(); i++) {
    std::string a = MakeIndexKey(MoodValue::Float(values[i]));
    std::string b = MakeIndexKey(MoodValue::Float(values[i + 1]));
    EXPECT_LE(Slice(a).compare(Slice(b)), 0) << values[i];
  }
}

TEST(KeyCodecTest, RandomizedOrderProperty) {
  Random rng(99);
  for (int trial = 0; trial < 500; trial++) {
    int64_t x = rng.Range(-1000000, 1000000);
    int64_t y = rng.Range(-1000000, 1000000);
    std::string kx = MakeIndexKey(MoodValue::LongInteger(x));
    std::string ky = MakeIndexKey(MoodValue::LongInteger(y));
    int c = Slice(kx).compare(Slice(ky));
    EXPECT_EQ(c < 0, x < y);
    EXPECT_EQ(c == 0, x == y);
  }
}

TEST_F(IndexFixture, BPlusTreeInsertSearch) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage_.buffer_pool(), &storage_, false));
  for (int i = 0; i < 100; i++) {
    MOOD_ASSERT_OK(tree->Insert(MakeIndexKey(MoodValue::Integer(i)),
                                static_cast<uint64_t>(i * 10)));
  }
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, tree->SearchEqual(MakeIndexKey(MoodValue::Integer(42))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 420u);
  MOOD_ASSERT_OK_AND_ASSIGN(auto miss, tree->SearchEqual(MakeIndexKey(MoodValue::Integer(1000))));
  EXPECT_TRUE(miss.empty());
}

TEST_F(IndexFixture, BPlusTreeDuplicateKeys) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage_.buffer_pool(), &storage_, false));
  std::string key = MakeIndexKey(MoodValue::Integer(7));
  for (uint64_t v = 0; v < 50; v++) MOOD_ASSERT_OK(tree->Insert(key, v));
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, tree->SearchEqual(key));
  EXPECT_EQ(hits.size(), 50u);
}

TEST_F(IndexFixture, BPlusTreeUniqueRejectsDuplicates) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage_.buffer_pool(), &storage_, true));
  std::string key = MakeIndexKey(MoodValue::Integer(7));
  MOOD_ASSERT_OK(tree->Insert(key, 1));
  EXPECT_TRUE(tree->Insert(key, 2).IsAlreadyExists());
}

TEST_F(IndexFixture, BPlusTreeSplitsAndRangeScan) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage_.buffer_pool(), &storage_, false));
  const int n = 5000;
  // Insert in shuffled order.
  std::vector<int> order(n);
  for (int i = 0; i < n; i++) order[static_cast<size_t>(i)] = i;
  Random rng(5);
  for (int i = n - 1; i > 0; i--) {
    std::swap(order[static_cast<size_t>(i)], order[rng.Uniform(static_cast<uint64_t>(i + 1))]);
  }
  for (int v : order) {
    MOOD_ASSERT_OK(tree->Insert(MakeIndexKey(MoodValue::Integer(v)),
                                static_cast<uint64_t>(v)));
  }
  BPlusTreeStats stats = tree->stats();
  EXPECT_GT(stats.levels, 1u);
  EXPECT_GT(stats.leaves, 1u);
  EXPECT_EQ(stats.entries, static_cast<uint64_t>(n));
  MOOD_ASSERT_OK_AND_ASSIGN(uint64_t counted, tree->CountLeaves());
  EXPECT_EQ(counted, stats.leaves);

  // Range scan [1000, 2000] returns exactly those values in order.
  std::string lo = MakeIndexKey(MoodValue::Integer(1000));
  std::string hi = MakeIndexKey(MoodValue::Integer(2000));
  std::vector<uint64_t> seen;
  MOOD_ASSERT_OK(tree->Scan(&lo, &hi, [&](Slice, uint64_t v) {
    seen.push_back(v);
    return Status::OK();
  }));
  ASSERT_EQ(seen.size(), 1001u);
  EXPECT_EQ(seen.front(), 1000u);
  EXPECT_EQ(seen.back(), 2000u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));

  // Unbounded scans.
  size_t all = 0;
  MOOD_ASSERT_OK(tree->Scan(nullptr, nullptr, [&](Slice, uint64_t) {
    all++;
    return Status::OK();
  }));
  EXPECT_EQ(all, static_cast<size_t>(n));
}

TEST_F(IndexFixture, BPlusTreeDelete) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage_.buffer_pool(), &storage_, false));
  for (int i = 0; i < 500; i++) {
    MOOD_ASSERT_OK(tree->Insert(MakeIndexKey(MoodValue::Integer(i)),
                                static_cast<uint64_t>(i)));
  }
  for (int i = 0; i < 500; i += 2) {
    MOOD_ASSERT_OK(tree->Delete(MakeIndexKey(MoodValue::Integer(i)),
                                static_cast<uint64_t>(i)));
  }
  EXPECT_TRUE(tree->Delete(MakeIndexKey(MoodValue::Integer(0)), 0).IsNotFound());
  for (int i = 0; i < 500; i++) {
    MOOD_ASSERT_OK_AND_ASSIGN(auto hits,
                              tree->SearchEqual(MakeIndexKey(MoodValue::Integer(i))));
    EXPECT_EQ(hits.size(), i % 2 == 0 ? 0u : 1u) << i;
  }
  EXPECT_EQ(tree->stats().entries, 250u);
}

TEST_F(IndexFixture, BPlusTreePersistsAcrossReopen) {
  PageId meta;
  {
    MOOD_ASSERT_OK_AND_ASSIGN(
        auto tree, BPlusTree::Create(storage_.buffer_pool(), &storage_, false));
    meta = tree->meta_page();
    for (int i = 0; i < 1000; i++) {
      MOOD_ASSERT_OK(tree->Insert(MakeIndexKey(MoodValue::Integer(i)),
                                  static_cast<uint64_t>(i)));
    }
  }
  MOOD_ASSERT_OK(storage_.Checkpoint());
  MOOD_ASSERT_OK(storage_.Close());
  StorageManager reopened;
  MOOD_ASSERT_OK(reopened.Open(dir_.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Open(reopened.buffer_pool(), &reopened, meta));
  EXPECT_EQ(tree->stats().entries, 1000u);
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, tree->SearchEqual(MakeIndexKey(MoodValue::Integer(777))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 777u);
}

TEST_F(IndexFixture, BPlusTreeStringKeys) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage_.buffer_pool(), &storage_, false));
  std::vector<std::string> names = {"BMW", "Audi", "Zonda", "Fiat", "Mercedes"};
  for (size_t i = 0; i < names.size(); i++) {
    MOOD_ASSERT_OK(tree->Insert(MakeIndexKey(MoodValue::String(names[i])), i));
  }
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits,
                            tree->SearchEqual(MakeIndexKey(MoodValue::String("BMW"))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  // Lexicographic range Audi..Fiat.
  std::string lo = MakeIndexKey(MoodValue::String("Audi"));
  std::string hi = MakeIndexKey(MoodValue::String("Fiat"));
  size_t count = 0;
  MOOD_ASSERT_OK(tree->Scan(&lo, &hi, [&](Slice, uint64_t) {
    count++;
    return Status::OK();
  }));
  EXPECT_EQ(count, 3u);  // Audi, BMW, Fiat
}

class BPlusTreeModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeModelTest, MatchesMultimapModel) {
  TempDir dir;
  StorageManager storage;
  StorageOptions opts;
  opts.pool_pages = 512;
  MOOD_ASSERT_OK(storage.Open(dir.Path("db"), opts));
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree,
                            BPlusTree::Create(storage.buffer_pool(), &storage, false));
  Random rng(GetParam());
  std::multimap<int64_t, uint64_t> model;
  for (int step = 0; step < 3000; step++) {
    int64_t key = rng.Range(0, 200);
    if (rng.Uniform(3) != 0) {
      uint64_t value = rng.Next() % 1000000;
      MOOD_ASSERT_OK(tree->Insert(MakeIndexKey(MoodValue::LongInteger(key)), value));
      model.emplace(key, value);
    } else {
      auto range = model.equal_range(key);
      if (range.first != range.second) {
        MOOD_ASSERT_OK(tree->Delete(MakeIndexKey(MoodValue::LongInteger(key)),
                                    range.first->second));
        model.erase(range.first);
      }
    }
  }
  for (int64_t key = 0; key <= 200; key++) {
    MOOD_ASSERT_OK_AND_ASSIGN(
        auto hits, tree->SearchEqual(MakeIndexKey(MoodValue::LongInteger(key))));
    std::multiset<uint64_t> got(hits.begin(), hits.end());
    std::multiset<uint64_t> want;
    auto range = model.equal_range(key);
    for (auto it = range.first; it != range.second; ++it) want.insert(it->second);
    EXPECT_EQ(got, want) << "key " << key;
  }
  EXPECT_EQ(tree->stats().entries, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeModelTest, ::testing::Values(101, 202, 303));

TEST_F(IndexFixture, HashIndexBasics) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto idx,
                            HashIndex::Create(storage_.buffer_pool(), &storage_, 16));
  for (int i = 0; i < 2000; i++) {
    MOOD_ASSERT_OK(idx->Insert(MakeIndexKey(MoodValue::Integer(i % 100)),
                               static_cast<uint64_t>(i)));
  }
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, idx->SearchEqual(MakeIndexKey(MoodValue::Integer(5))));
  EXPECT_EQ(hits.size(), 20u);
  EXPECT_EQ(idx->entries(), 2000u);
  MOOD_ASSERT_OK_AND_ASSIGN(double chain, idx->AverageChainLength());
  EXPECT_GE(chain, 1.0);
  MOOD_ASSERT_OK(idx->Delete(MakeIndexKey(MoodValue::Integer(5)), hits[0]));
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits2, idx->SearchEqual(MakeIndexKey(MoodValue::Integer(5))));
  EXPECT_EQ(hits2.size(), 19u);
  EXPECT_TRUE(idx->Delete(MakeIndexKey(MoodValue::Integer(999)), 1).IsNotFound());
}

TEST_F(IndexFixture, HashIndexPersistsAcrossReopen) {
  PageId meta;
  {
    MOOD_ASSERT_OK_AND_ASSIGN(auto idx,
                              HashIndex::Create(storage_.buffer_pool(), &storage_, 8));
    meta = idx->meta_page();
    MOOD_ASSERT_OK(idx->Insert(MakeIndexKey(MoodValue::String("key")), 42));
  }
  MOOD_ASSERT_OK(storage_.Checkpoint());
  MOOD_ASSERT_OK(storage_.Close());
  StorageManager reopened;
  MOOD_ASSERT_OK(reopened.Open(dir_.Path("db")));
  MOOD_ASSERT_OK_AND_ASSIGN(auto idx,
                            HashIndex::Open(reopened.buffer_pool(), &reopened, meta));
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, idx->SearchEqual(MakeIndexKey(MoodValue::String("key"))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
}

TEST_F(IndexFixture, HashIndexRejectsBadBucketCounts) {
  EXPECT_FALSE(HashIndex::Create(storage_.buffer_pool(), &storage_, 0).ok());
  EXPECT_FALSE(HashIndex::Create(storage_.buffer_pool(), &storage_, 100000).ok());
}

TEST_F(IndexFixture, RTreeInsertSearchWindow) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree, RTree::Create(storage_.buffer_pool(), &storage_));
  // 20x20 grid of unit squares.
  for (int x = 0; x < 20; x++) {
    for (int y = 0; y < 20; y++) {
      Rect r{static_cast<double>(x), static_cast<double>(y), x + 1.0, y + 1.0};
      MOOD_ASSERT_OK(tree->Insert(r, static_cast<uint64_t>(x * 100 + y)));
    }
  }
  EXPECT_EQ(tree->entries(), 400u);
  MOOD_ASSERT_OK(tree->CheckInvariants());
  // Window covering a 3x3 block (inclusive borders touch neighbours).
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, tree->Search(Rect{5.5, 5.5, 7.5, 7.5}));
  EXPECT_EQ(hits.size(), 9u);
  // Point query.
  MOOD_ASSERT_OK_AND_ASSIGN(auto point, tree->Search(Rect::Point(10.5, 10.5)));
  ASSERT_EQ(point.size(), 1u);
  EXPECT_EQ(point[0].second, 1010u);
}

TEST_F(IndexFixture, RTreeMatchesBruteForce) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree, RTree::Create(storage_.buffer_pool(), &storage_));
  Random rng(7);
  std::vector<std::pair<Rect, uint64_t>> all;
  for (uint64_t i = 0; i < 500; i++) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    Rect r{x, y, x + rng.NextDouble() * 5, y + rng.NextDouble() * 5};
    MOOD_ASSERT_OK(tree->Insert(r, i));
    all.emplace_back(r, i);
  }
  MOOD_ASSERT_OK(tree->CheckInvariants());
  for (int trial = 0; trial < 20; trial++) {
    double x = rng.NextDouble() * 90, y = rng.NextDouble() * 90;
    Rect window{x, y, x + 10, y + 10};
    MOOD_ASSERT_OK_AND_ASSIGN(auto hits, tree->Search(window));
    std::set<uint64_t> got;
    for (const auto& [r, v] : hits) got.insert(v);
    std::set<uint64_t> want;
    for (const auto& [r, v] : all) {
      if (r.Intersects(window)) want.insert(v);
    }
    EXPECT_EQ(got, want);
  }
}

TEST_F(IndexFixture, RTreeDelete) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto tree, RTree::Create(storage_.buffer_pool(), &storage_));
  Rect r{1, 1, 2, 2};
  MOOD_ASSERT_OK(tree->Insert(r, 5));
  MOOD_ASSERT_OK(tree->Insert(Rect{3, 3, 4, 4}, 6));
  MOOD_ASSERT_OK(tree->Delete(r, 5));
  EXPECT_EQ(tree->entries(), 1u);
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, tree->Search(Rect{0, 0, 10, 10}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].second, 6u);
  EXPECT_TRUE(tree->Delete(r, 5).IsNotFound());
}

TEST_F(IndexFixture, BinaryJoinIndexBothDirections) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto bji,
                            BinaryJoinIndex::Create(storage_.buffer_pool(), &storage_));
  Oid c1{1, 10, 0}, c2{1, 10, 1}, d1{2, 20, 0}, d2{2, 20, 1};
  MOOD_ASSERT_OK(bji->Add(c1, d1));
  MOOD_ASSERT_OK(bji->Add(c2, d1));
  MOOD_ASSERT_OK(bji->Add(c2, d2));
  MOOD_ASSERT_OK_AND_ASSIGN(auto targets, bji->Targets(c2));
  EXPECT_EQ(targets.size(), 2u);
  MOOD_ASSERT_OK_AND_ASSIGN(auto sources, bji->Sources(d1));
  EXPECT_EQ(sources.size(), 2u);
  EXPECT_EQ(bji->pair_count(), 3u);
  MOOD_ASSERT_OK(bji->Remove(c2, d1));
  MOOD_ASSERT_OK_AND_ASSIGN(auto sources2, bji->Sources(d1));
  ASSERT_EQ(sources2.size(), 1u);
  EXPECT_EQ(sources2[0], c1);
}

TEST_F(IndexFixture, PathIndexLookup) {
  MOOD_ASSERT_OK_AND_ASSIGN(auto pidx,
                            PathIndex::Create(storage_.buffer_pool(), &storage_));
  Oid root1{1, 1, 0}, root2{1, 1, 1};
  MOOD_ASSERT_OK(pidx->Add(MakeIndexKey(MoodValue::Integer(4)), root1));
  MOOD_ASSERT_OK(pidx->Add(MakeIndexKey(MoodValue::Integer(8)), root2));
  MOOD_ASSERT_OK_AND_ASSIGN(auto hits, pidx->Lookup(MakeIndexKey(MoodValue::Integer(4))));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], root1);
  std::string lo = MakeIndexKey(MoodValue::Integer(0));
  std::string hi = MakeIndexKey(MoodValue::Integer(10));
  MOOD_ASSERT_OK_AND_ASSIGN(auto range, pidx->LookupRange(&lo, &hi));
  EXPECT_EQ(range.size(), 2u);
}

}  // namespace
}  // namespace mood
