#include "index/hash_index.h"

#include <cstring>

#include "common/coding.h"
#include "common/hash.h"

namespace mood {

namespace {
constexpr uint32_t kMetaMagic = 0x4A5B0AD1;
}

size_t HashIndex::BucketPage::SerializedSize() const {
  size_t sz = 8 + 2 + 4;
  for (const auto& e : entries) sz += 2 + e.key.size() + 8;
  return sz;
}

Result<std::unique_ptr<HashIndex>> HashIndex::Create(BufferPool* pool,
                                                     FileDirectory* alloc,
                                                     uint32_t num_buckets) {
  const uint32_t max_buckets = static_cast<uint32_t>((kPageSize - 32) / 4);
  if (num_buckets == 0 || num_buckets > max_buckets) {
    return Status::InvalidArgument("bucket count must be in [1, " +
                                   std::to_string(max_buckets) + "]");
  }
  MOOD_ASSIGN_OR_RETURN(Page* meta_pg, pool->NewPage());
  PageId meta_id = meta_pg->page_id();
  MOOD_RETURN_IF_ERROR(pool->UnpinPage(meta_id, true));

  auto idx = std::unique_ptr<HashIndex>(new HashIndex(pool, alloc, meta_id));
  idx->buckets_.resize(num_buckets, kInvalidPageId);
  for (uint32_t b = 0; b < num_buckets; b++) {
    MOOD_ASSIGN_OR_RETURN(PageId pid, alloc->AllocatePage());
    BucketPage bp;
    bp.id = pid;
    MOOD_RETURN_IF_ERROR(idx->StoreBucketPage(bp));
    idx->buckets_[b] = pid;
  }
  MOOD_RETURN_IF_ERROR(idx->StoreMeta());
  return idx;
}

Result<std::unique_ptr<HashIndex>> HashIndex::Open(BufferPool* pool,
                                                   FileDirectory* alloc,
                                                   PageId meta_page) {
  auto idx = std::unique_ptr<HashIndex>(new HashIndex(pool, alloc, meta_page));
  MOOD_RETURN_IF_ERROR(idx->LoadMeta());
  return idx;
}

Status HashIndex::LoadMeta() {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(meta_page_));
  PageGuard guard(pool_, page);
  const char* p = page->data();
  if (DecodeFixed32(p + 8) != kMetaMagic) {
    return Status::Corruption("not a hash-index meta page");
  }
  uint32_t n = DecodeFixed32(p + 12);
  entries_ = DecodeFixed64(p + 16);
  buckets_.resize(n);
  for (uint32_t i = 0; i < n; i++) buckets_[i] = DecodeFixed32(p + 24 + i * 4);
  return Status::OK();
}

Status HashIndex::StoreMeta() const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(meta_page_));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  char* p = page->data();
  EncodeFixed64(p, kInvalidLsn);
  EncodeFixed32(p + 8, kMetaMagic);
  EncodeFixed32(p + 12, static_cast<uint32_t>(buckets_.size()));
  EncodeFixed64(p + 16, entries_);
  for (size_t i = 0; i < buckets_.size(); i++) {
    EncodeFixed32(p + 24 + i * 4, buckets_[i]);
  }
  return Status::OK();
}

Result<HashIndex::BucketPage> HashIndex::LoadBucketPage(PageId id) const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(id));
  PageGuard guard(pool_, page);
  const char* p = page->data();
  BucketPage bp;
  bp.id = id;
  uint16_t count = DecodeFixed16(p + 8);
  bp.next = DecodeFixed32(p + 10);
  size_t off = 14;
  bp.entries.reserve(count);
  for (uint16_t i = 0; i < count; i++) {
    uint16_t klen = DecodeFixed16(p + off);
    off += 2;
    Entry e;
    e.key.assign(p + off, klen);
    off += klen;
    e.value = DecodeFixed64(p + off);
    off += 8;
    bp.entries.push_back(std::move(e));
  }
  if (off > kPageSize) return Status::Corruption("hash bucket overruns page");
  return bp;
}

Status HashIndex::StoreBucketPage(const BucketPage& bp) const {
  MOOD_ASSIGN_OR_RETURN(Page* page, pool_->FetchPage(bp.id));
  PageGuard guard(pool_, page);
  guard.MarkDirty();
  char* p = page->data();
  std::memset(p, 0, kPageSize);
  EncodeFixed64(p, kInvalidLsn);
  EncodeFixed16(p + 8, static_cast<uint16_t>(bp.entries.size()));
  EncodeFixed32(p + 10, bp.next);
  size_t off = 14;
  for (const auto& e : bp.entries) {
    EncodeFixed16(p + off, static_cast<uint16_t>(e.key.size()));
    off += 2;
    std::memcpy(p + off, e.key.data(), e.key.size());
    off += e.key.size();
    EncodeFixed64(p + off, e.value);
    off += 8;
  }
  return Status::OK();
}

uint32_t HashIndex::BucketOf(Slice key) const {
  return static_cast<uint32_t>(Hash64(key) % buckets_.size());
}

Status HashIndex::Insert(Slice key, uint64_t value) {
  PageId pid = buckets_[BucketOf(key)];
  for (;;) {
    MOOD_ASSIGN_OR_RETURN(BucketPage bp, LoadBucketPage(pid));
    Entry e{key.ToString(), value};
    size_t need = 2 + e.key.size() + 8;
    if (bp.SerializedSize() + need <= kBucketCapacity) {
      bp.entries.push_back(std::move(e));
      MOOD_RETURN_IF_ERROR(StoreBucketPage(bp));
      entries_++;
      return StoreMeta();
    }
    if (bp.next == kInvalidPageId) {
      MOOD_ASSIGN_OR_RETURN(PageId fresh, alloc_->AllocatePage());
      BucketPage overflow;
      overflow.id = fresh;
      overflow.entries.push_back(std::move(e));
      MOOD_RETURN_IF_ERROR(StoreBucketPage(overflow));
      bp.next = fresh;
      MOOD_RETURN_IF_ERROR(StoreBucketPage(bp));
      entries_++;
      return StoreMeta();
    }
    pid = bp.next;
  }
}

Status HashIndex::Delete(Slice key, uint64_t value) {
  PageId pid = buckets_[BucketOf(key)];
  while (pid != kInvalidPageId) {
    MOOD_ASSIGN_OR_RETURN(BucketPage bp, LoadBucketPage(pid));
    for (size_t i = 0; i < bp.entries.size(); i++) {
      if (bp.entries[i].value == value && Slice(bp.entries[i].key) == key) {
        bp.entries.erase(bp.entries.begin() + i);
        MOOD_RETURN_IF_ERROR(StoreBucketPage(bp));
        entries_--;
        return StoreMeta();
      }
    }
    pid = bp.next;
  }
  return Status::NotFound("key/value pair not in hash index");
}

Result<std::vector<uint64_t>> HashIndex::SearchEqual(Slice key) const {
  std::vector<uint64_t> out;
  PageId pid = buckets_[BucketOf(key)];
  while (pid != kInvalidPageId) {
    MOOD_ASSIGN_OR_RETURN(BucketPage bp, LoadBucketPage(pid));
    for (const auto& e : bp.entries) {
      if (Slice(e.key) == key) out.push_back(e.value);
    }
    pid = bp.next;
  }
  return out;
}

Result<double> HashIndex::AverageChainLength() const {
  uint64_t total_pages = 0;
  for (PageId head : buckets_) {
    PageId pid = head;
    while (pid != kInvalidPageId) {
      total_pages++;
      MOOD_ASSIGN_OR_RETURN(BucketPage bp, LoadBucketPage(pid));
      pid = bp.next;
    }
  }
  return static_cast<double>(total_pages) / static_cast<double>(buckets_.size());
}

}  // namespace mood
