#include "net/wire.h"

#include <cstring>

namespace mood {
namespace net {

void AppendFrame(std::string* out, FrameType type, const Slice& payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
}

bool ExtractFrame(std::string* buf, Frame* out, size_t max_frame_bytes,
                  Status* error) {
  *error = Status::OK();
  if (buf->size() < 5) return false;
  const uint32_t len = DecodeFixed32(buf->data());
  if (len > max_frame_bytes) {
    *error = Status::InvalidArgument("wire frame exceeds " +
                                     std::to_string(max_frame_bytes) + " bytes");
    return false;
  }
  if (buf->size() < 5u + len) return false;
  out->type = static_cast<FrameType>(static_cast<uint8_t>((*buf)[4]));
  out->payload.assign(buf->data() + 5, len);
  buf->erase(0, 5u + len);
  return true;
}

Status GetU8(Slice* in, uint8_t* v) {
  if (in->size() < 1) return Status::Corruption("truncated wire payload (u8)");
  *v = static_cast<uint8_t>(in->data()[0]);
  in->remove_prefix(1);
  return Status::OK();
}

Status GetU16(Slice* in, uint16_t* v) {
  if (in->size() < 2) return Status::Corruption("truncated wire payload (u16)");
  *v = DecodeFixed16(in->data());
  in->remove_prefix(2);
  return Status::OK();
}

Status GetU32(Slice* in, uint32_t* v) {
  if (in->size() < 4) return Status::Corruption("truncated wire payload (u32)");
  *v = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return Status::OK();
}

Status GetU64(Slice* in, uint64_t* v) {
  if (in->size() < 8) return Status::Corruption("truncated wire payload (u64)");
  *v = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return Status::OK();
}

Status GetStr(Slice* in, std::string* v) {
  uint32_t len = 0;
  MOOD_RETURN_IF_ERROR(GetU32(in, &len));
  if (in->size() < len) return Status::Corruption("truncated wire payload (str)");
  v->assign(in->data(), len);
  in->remove_prefix(len);
  return Status::OK();
}

void AppendRow(std::string* dst, const std::vector<MoodValue>& row) {
  for (const MoodValue& v : row) v.EncodeTo(dst);
}

Status DecodeRow(Slice* in, uint16_t ncols, std::vector<MoodValue>* out) {
  out->clear();
  out->reserve(ncols);
  for (uint16_t i = 0; i < ncols; i++) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, MoodValue::Decode(in));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

void AppendErrorFrame(std::string* out, const Status& status) {
  std::string payload;
  PutFixed32(&payload, static_cast<uint32_t>(status.code()));
  PutLengthPrefixedSlice(&payload, status.message());
  AppendFrame(out, FrameType::kError, payload);
}

}  // namespace net
}  // namespace mood
