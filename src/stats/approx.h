#pragma once

#include <cstdint>

namespace mood {

/// The paper's c(n, m, r) approximation [Cer 85] to the expected number of
/// distinct "colors" when r objects are chosen out of n objects uniformly
/// distributed over m colors:
///
///   c(n,m,r) = r            if r <  m/2
///            = (r + m) / 3  if m/2 <= r < 2m
///            = m            if r >= 2m
double CApprox(double n, double m, double r);

/// Yao's exact formula [Yao 77] for the expected number of distinct blocks
/// touched when selecting k records out of n records stored in m blocks
/// (n/m records per block). Used by tests/benches to validate CApprox.
double YaoExact(uint64_t n, uint64_t m, uint64_t k);

/// Cardenas' classic approximation: m * (1 - (1 - 1/m)^k).
double Cardenas(double m, double k);

/// The paper's o(t, x, y): probability that two sets of cardinalities x and y,
/// drawn from t distinct objects, share at least one object:
///
///   o(t,x,y) = 1 - C(t-x, y) / C(t, y)
///
/// computed in log-space; y may be fractional (the paper multiplies k_m by
/// hitprb), handled by the Gamma-function generalization of the binomial ratio.
double OverlapProbability(double t, double x, double y);

}  // namespace mood
