#pragma once

#include <cstdint>

namespace mood {

/// Deterministic xorshift128+ PRNG. Every synthetic workload generator in the
/// benchmark harness is seeded so experiments are exactly reproducible.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    s0_ = SplitMix(seed);
    s1_ = SplitMix(s0_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t SplitMix(uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_, s1_;
};

}  // namespace mood
