#pragma once

#include "obs/query_profile.h"
#include "optimizer/optimizer.h"
#include "stats/statistics.h"

namespace mood {

/// Closes the feedback loop: pairs the optimized plan tree with the profile
/// tree of its execution (profile children mirror plan nodes by Describe()
/// label) and
///   - writes observed selectivities into the StatisticsManager's feedback
///     store for every plan node carrying a feedback signature, and
///   - feeds measured per-operation costs (ms/page from BIND leaves, ms/deref
///     from pointer joins, ms/predicate from filters) into CostCalibration so
///     the next Optimize() prices plans with this machine's numbers instead of
///     the paper's 1994 disk.
/// Returns the number of selectivity entries recorded.
size_t AbsorbProfile(const QueryOptimizer::Optimized& optimized,
                     const QueryProfile& root, StatisticsManager* stats);

}  // namespace mood
