#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace mood {

bool IsKeyword(const std::string& upper) {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",    "WHERE",   "GROUP",   "BY",     "HAVING",  "ORDER",
      "ASC",    "DESC",    "AND",     "OR",      "NOT",    "BETWEEN", "EVERY",
      "CREATE", "CLASS",   "TUPLE",   "METHODS", "INHERITS", "NEW",   "SET",
      "LIST",   "REFERENCE", "INTEGER", "FLOAT", "LONGINTEGER", "STRING",
      "CHAR",   "BOOLEAN", "TRUE",    "FALSE",   "NULL",   "UPDATE",  "DELETE",
      "INDEX",  "ON",      "USING",   "BTREE",   "HASH",   "PATH",    "UNIQUE",
      "DROP",   "AS",      "BIND",    "TO",      "DISTINCT", "TYPE",  "RTREE",
      "JOININDEX", "EXPLAIN", "ANALYZE", "VERBOSE", "MATERIALIZED", "VIEW"};
  return kKeywords.count(upper) > 0;
}

Result<std::vector<Token>> Lexer::Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto make = [&](TokenType t, std::string text, size_t pos) {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.position = pos;
    return tok;
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        j++;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = word;
      for (auto& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (IsKeyword(upper)) {
        tokens.push_back(make(TokenType::kKeyword, upper, start));
      } else {
        tokens.push_back(make(TokenType::kIdentifier, word, start));
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) j++;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        j++;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) j++;
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) k++;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) j++;
        }
      }
      std::string text = input.substr(i, j - i);
      Token tok = make(is_float ? TokenType::kFloatLiteral : TokenType::kIntLiteral,
                       text, start);
      if (is_float) {
        tok.float_value = std::stod(text);
      } else {
        try {
          tok.int_value = std::stoll(text);
        } catch (const std::exception&) {
          return Status::ParseError("integer literal out of range: " + text);
        }
      }
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          j++;
          break;
        }
        value.push_back(input[j]);
        j++;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token tok = make(TokenType::kStringLiteral, value, start);
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('<', '>')) {
      tokens.push_back(make(TokenType::kNe, "<>", start));
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      tokens.push_back(make(TokenType::kLe, "<=", start));
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      tokens.push_back(make(TokenType::kGe, ">=", start));
      i += 2;
      continue;
    }
    if (two(':', ':')) {
      tokens.push_back(make(TokenType::kColonColon, "::", start));
      i += 2;
      continue;
    }
    switch (c) {
      case ',': tokens.push_back(make(TokenType::kComma, ",", start)); break;
      case '.': tokens.push_back(make(TokenType::kDot, ".", start)); break;
      case '(': tokens.push_back(make(TokenType::kLParen, "(", start)); break;
      case ')': tokens.push_back(make(TokenType::kRParen, ")", start)); break;
      case '<': tokens.push_back(make(TokenType::kLAngle, "<", start)); break;
      case '>': tokens.push_back(make(TokenType::kRAngle, ">", start)); break;
      case '=': tokens.push_back(make(TokenType::kEq, "=", start)); break;
      case '+': tokens.push_back(make(TokenType::kPlus, "+", start)); break;
      case '-': tokens.push_back(make(TokenType::kMinus, "-", start)); break;
      case '*': tokens.push_back(make(TokenType::kStar, "*", start)); break;
      case '/': tokens.push_back(make(TokenType::kSlash, "/", start)); break;
      case '%': tokens.push_back(make(TokenType::kPercent, "%", start)); break;
      case ';': tokens.push_back(make(TokenType::kSemicolon, ";", start)); break;
      case ':': tokens.push_back(make(TokenType::kColon, ":", start)); break;
      case '?': tokens.push_back(make(TokenType::kQuestion, "?", start)); break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    i++;
  }
  tokens.push_back(Token{TokenType::kEof, "", 0, 0, n});
  return tokens;
}

}  // namespace mood
