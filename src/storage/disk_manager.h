#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace mood {

/// I/O statistics the benchmark harness reads to compare *measured* page accesses
/// against the paper's cost formulas (SEQCOST / RNDCOST, Section 5).
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  /// Reads whose page id immediately follows the previously read page id; the
  /// remainder are counted as random. This is how bench_file_ops classifies the
  /// measured access pattern.
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;

  void Clear() { *this = DiskStats{}; }
};

/// Page-granular file I/O. One DiskManager owns one OS file. Thread-safe.
class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Opens (creating if necessary) the backing file.
  Status Open(const std::string& path);
  Status Close();

  /// Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  Status ReadPage(PageId page_id, char* out);
  Status WritePage(PageId page_id, const char* data);

  /// Forces written data to stable storage.
  Status Sync();

  uint32_t num_pages() const { return num_pages_; }
  bool is_open() const { return fd_ >= 0; }

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_.Clear(); }

 private:
  int fd_ = -1;
  std::string path_;
  uint32_t num_pages_ = 0;
  PageId last_read_page_ = kInvalidPageId;
  DiskStats stats_;
  mutable std::mutex mu_;
};

}  // namespace mood
