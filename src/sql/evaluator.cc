#include "sql/evaluator.h"

#include "types/operand.h"

namespace mood {

Result<MoodValue> Evaluator::CallMethod(Oid receiver, const std::string& fname,
                                        const std::vector<ExprPtr>& args,
                                        const Env& env) const {
  MOOD_ASSIGN_OR_RETURN(std::string cls, objects_->ClassOf(receiver, env.deref));
  MOOD_ASSIGN_OR_RETURN(MoodValue self_value, objects_->Fetch(receiver, env.deref));
  // The memoized layout supplies the flattened attribute list (and its name
  // vector for the method context) without re-walking the IS-A DAG per call;
  // DDL invalidates it through the catalog's schema epoch.
  MOOD_ASSIGN_OR_RETURN(AttributeLayoutPtr layout, objects_->LayoutOf(cls));
  const auto& attrs = layout->attrs;
  // Pad the tuple so methods can see attributes added after this object was made.
  if (self_value.kind() == ValueKind::kTuple && self_value.size() < attrs.size()) {
    auto& elems = self_value.mutable_elements();
    for (size_t i = elems.size(); i < attrs.size(); i++) {
      elems.push_back(attrs[i].type->DefaultValue());
    }
  }

  std::vector<MoodValue> arg_values;
  arg_values.reserve(args.size());
  for (const auto& a : args) {
    MOOD_ASSIGN_OR_RETURN(MoodValue v, Eval(a, env));
    arg_values.push_back(std::move(v));
  }

  MethodContext ctx;
  ctx.self = receiver;
  ctx.self_value = &self_value;
  ctx.attr_names = &layout->names;
  ctx.deref = [this, &env](Oid oid) { return objects_->Fetch(oid, env.deref); };
  return functions_->Invoke(cls, fname, ctx, std::move(arg_values));
}

Result<MoodValue> Evaluator::EvalPathFrom(Oid root, const std::vector<PathStep>& steps,
                                          const Env& env) const {
  MoodValue current = MoodValue::Reference(root);
  for (size_t i = 0; i < steps.size(); i++) {
    const PathStep& step = steps[i];
    // Apply the step to every element if the current value fans out.
    auto apply_one = [&](const MoodValue& v) -> Result<MoodValue> {
      if (v.is_null()) return MoodValue::Null();
      if (v.kind() != ValueKind::kReference) {
        return Status::TypeError("path step '" + step.name +
                                 "' applied to a non-reference value");
      }
      Oid oid = v.AsReference();
      if (step.name == "self" && !step.is_call) return v;
      if (step.is_call) return CallMethod(oid, step.name, step.args, env);
      // Attribute access; a name that is not an attribute may be a parameterless
      // method (the paper allows `s.A` where A is a parameterless method).
      auto attr = objects_->GetAttribute(oid, step.name, env.deref);
      if (attr.ok()) return attr;
      if (attr.status().IsNotFound()) {
        return CallMethod(oid, step.name, {}, env);
      }
      return attr;
    };

    if (current.IsCollection()) {
      MoodValue::ValueList results;
      results.reserve(current.elements().size());
      for (const auto& e : current.elements()) {
        MOOD_ASSIGN_OR_RETURN(MoodValue r, apply_one(e));
        if (r.is_null()) continue;
        if (r.IsCollection()) {
          // Flatten by moving: mutable_elements() is copy-on-write, so a
          // uniquely-owned inner collection moves element-wise without copies.
          auto& inner = r.mutable_elements();
          results.reserve(results.size() + inner.size());
          for (auto& iv : inner) results.push_back(std::move(iv));
        } else {
          results.push_back(std::move(r));
        }
      }
      current = MoodValue::Set(std::move(results));
    } else {
      MOOD_ASSIGN_OR_RETURN(current, apply_one(current));
      if (current.is_null() && i + 1 < steps.size()) return MoodValue::Null();
    }
  }
  return current;
}

Result<MoodValue> Evaluator::Eval(const ExprPtr& expr, const Env& env) const {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return expr->literal;
    case ExprKind::kPath: {
      auto it = env.vars.find(expr->range_var);
      if (it == env.vars.end()) {
        return Status::InvalidArgument("unbound range variable '" + expr->range_var +
                                       "'");
      }
      if (expr->steps.empty()) return MoodValue::Reference(it->second);
      return EvalPathFrom(it->second, expr->steps, env);
    }
    case ExprKind::kUnary: {
      MOOD_ASSIGN_OR_RETURN(MoodValue v, Eval(expr->operand, env));
      OperandDataType o = OperandDataType::FromValue(v);
      if (expr->uop == UnaryOp::kNeg) return (-o).ToValue();
      return (!o).ToValue();
    }
    case ExprKind::kBinary:
      return EvalBinary(*expr, env);
    case ExprKind::kParameter: {
      if (env.params == nullptr || expr->param_index >= env.params->size()) {
        return Status::InvalidArgument("parameter ?" +
                                       std::to_string(expr->param_index + 1) +
                                       " not bound");
      }
      return (*env.params)[expr->param_index];
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Evaluator::Compare(BinaryOp op, const MoodValue& lhs,
                                const MoodValue& rhs) {
  // Existential fan-out: if either side is a collection, the comparison holds if
  // any element pair does.
  if (lhs.IsCollection()) {
    for (const auto& e : lhs.elements()) {
      MOOD_ASSIGN_OR_RETURN(bool r, Compare(op, e, rhs));
      if (r) return true;
    }
    return false;
  }
  if (rhs.IsCollection()) {
    for (const auto& e : rhs.elements()) {
      MOOD_ASSIGN_OR_RETURN(bool r, Compare(op, lhs, e));
      if (r) return true;
    }
    return false;
  }
  if (lhs.is_null() || rhs.is_null()) return false;
  // References compare by identity.
  if (lhs.kind() == ValueKind::kReference || rhs.kind() == ValueKind::kReference) {
    if (lhs.kind() != rhs.kind()) {
      return Status::TypeError("cannot compare reference with non-reference");
    }
    bool eq = lhs.AsReference() == rhs.AsReference();
    if (op == BinaryOp::kEq) return eq;
    if (op == BinaryOp::kNe) return !eq;
    return Status::TypeError("references only support = and <>");
  }
  MOOD_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default:
      return Status::Internal("not a comparison");
  }
}

Result<MoodValue> Evaluator::EvalBinary(const Expr& e, const Env& env) const {
  if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
    // Short-circuit evaluation (the optimizer orders predicates to exploit it).
    MOOD_ASSIGN_OR_RETURN(MoodValue lv, Eval(e.lhs, env));
    OperandDataType lo = OperandDataType::FromValue(lv);
    MOOD_ASSIGN_OR_RETURN(bool lb, lo.AsBool());
    if (e.op == BinaryOp::kAnd && !lb) return MoodValue::Boolean(false);
    if (e.op == BinaryOp::kOr && lb) return MoodValue::Boolean(true);
    MOOD_ASSIGN_OR_RETURN(MoodValue rv, Eval(e.rhs, env));
    OperandDataType ro = OperandDataType::FromValue(rv);
    MOOD_ASSIGN_OR_RETURN(bool rb, ro.AsBool());
    return MoodValue::Boolean(rb);
  }
  MOOD_ASSIGN_OR_RETURN(MoodValue lv, Eval(e.lhs, env));
  MOOD_ASSIGN_OR_RETURN(MoodValue rv, Eval(e.rhs, env));
  if (IsComparison(e.op)) {
    MOOD_ASSIGN_OR_RETURN(bool r, Compare(e.op, lv, rv));
    return MoodValue::Boolean(r);
  }
  // Arithmetic through the run-time-typed interpreter.
  OperandDataType x = OperandDataType::FromValue(lv);
  OperandDataType y = OperandDataType::FromValue(rv);
  OperandDataType r(DataTypeCode::kInt32);
  switch (e.op) {
    case BinaryOp::kAdd: r = x + y; break;
    case BinaryOp::kSub: r = x - y; break;
    case BinaryOp::kMul: r = x * y; break;
    case BinaryOp::kDiv: r = x / y; break;
    case BinaryOp::kMod: r = x % y; break;
    default:
      return Status::Internal("unhandled binary operator");
  }
  return r.ToValue();
}

Result<bool> Evaluator::EvalPredicate(const ExprPtr& expr, const Env& env) const {
  MOOD_ASSIGN_OR_RETURN(MoodValue v, Eval(expr, env));
  if (v.is_null()) return false;
  OperandDataType o = OperandDataType::FromValue(v);
  return o.AsBool();
}

}  // namespace mood
