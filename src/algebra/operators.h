#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algebra/collection.h"
#include "common/status.h"
#include "objects/object_manager.h"
#include "sql/evaluator.h"

namespace mood {

/// Join strategies of the Join operator (Section 3.2 / Section 8.3).
enum class JoinMethod : uint8_t {
  kForwardTraversal = 0,
  kIndexed = 1,          ///< B+-tree / binary join index / path index
  kBackwardTraversal = 2,
  kHashPartition = 3,    ///< pointer-based hash-partition join
  kNestedLoop = 4,       ///< general fallback for explicit (value) joins
};

std::string_view JoinMethodName(JoinMethod m);

// --- Return-type rules (paper Tables 1-7), exposed as pure functions so the
// --- table-regeneration bench prints them straight from the implementation.

/// Table 1: return type of Select. Extents may return Extent (objects kept as
/// objects) or Set (identifiers only) — `as_set` picks the latter.
CollKind SelectReturnKind(CollKind arg, bool as_set = false);

/// Table 2: return type of Join.
CollKind JoinReturnKind(CollKind arg1, CollKind arg2);

/// Table 3: DupElim applicability ("not applicable" for Set => nullopt).
std::optional<std::string> DupElimReturn(CollKind arg);

/// Table 4: return type of Union/Intersection/Difference.
Result<CollKind> SetOpReturnKind(CollKind arg1, CollKind arg2);

/// Table 5 (asSet / asList): what the resulting elements are.
std::string AsSetListElements(CollKind arg);

/// Table 6 (asExtent): argument must be Set or List.
Result<std::string> AsExtentReturn(CollKind arg);

/// Table 7: argument kinds Unnest accepts.
bool UnnestAccepts(CollKind arg, bool tuple_object);

/// The MOOD algebra: every operator of Section 3.2 as executable code over the
/// object manager. Predicates are MOODSQL expressions evaluated with the
/// element bound to `var`.
///
/// Thread safety: the const operators the parallel executor fans out (IndSel,
/// Deref and friends) are concurrent-read safe — they read through the object
/// manager's guarded index caches and the buffer pool. Bind mutates the
/// session name table and is externally synchronized: it runs on the
/// interpreter thread before workers fan out (see DESIGN.md §6).
class MoodAlgebra {
 public:
  MoodAlgebra(ObjectManager* objects, Evaluator* evaluator)
      : objects_(objects), evaluator_(evaluator) {}

  // --- General operators -------------------------------------------------------

  /// ObjId(o): identity on Oids (objects are addressed by their identifiers).
  Oid ObjId(Oid o) const { return o; }

  /// TypeId(o): type identifier of an object.
  Result<TypeId> TypeIdOf(Oid o) const;

  /// Deref(oid).
  Result<MoodValue> Deref(Oid oid) const { return objects_->Fetch(oid); }

  /// isA(path): class name of the last attribute of a path starting with a class
  /// name, e.g. isA("Vehicle.drivetrain.engine") == "VehicleEngine".
  Result<std::string> IsA(const std::string& path) const;

  /// Bind(arg, aName): names a collection in the session namespace.
  Status Bind(Collection arg, const std::string& name);
  Result<Collection> Named(const std::string& name) const;

  /// Bind over a class extent: the usual leaf of an access plan.
  Result<Collection> BindClass(const std::string& class_name, bool with_subclasses,
                               const std::vector<std::string>& excludes = {}) const;

  // --- Collection operators ------------------------------------------------------

  /// Select(arg, P): P is evaluated with each element bound to `var`.
  Result<Collection> Select(const Collection& arg, const ExprPtr& pred,
                            const std::string& var, bool extent_as_set = false) const;

  /// IndSel(arg, index_type, P): index-assisted selection; P must be
  /// `var.attr theta const`. Returns a Set of object identifiers.
  Result<Collection> IndSel(const std::string& class_name, const IndexDesc& index,
                            BinaryOp op, const MoodValue& constant) const;

  /// Project(aTupleCollection, attribute_list): dereferences identifiers and
  /// returns the extent of tuple values projected onto the attribute list.
  Result<Collection> Project(const Collection& arg,
                             const std::vector<std::string>& attributes) const;

  /// Join(arg1, arg2, join_method, P): P references `var1` and `var2`.
  /// The implicit-join form C.A = D.self is accelerated by forward/backward
  /// traversal, indexes and hash partitioning; other predicates fall back to
  /// nested loops. The result holds <left, right> pair tuples with the kind of
  /// Table 2.
  Result<Collection> Join(const Collection& arg1, const Collection& arg2,
                          JoinMethod method, const ExprPtr& pred,
                          const std::string& var1, const std::string& var2,
                          const std::string& ref_attr = "") const;

  /// Partition(aTupleCollection, attribute_list): groups of objects with equal
  /// values on the attributes.
  Result<std::vector<Collection>> Partition(
      const Collection& arg, const std::vector<std::string>& attributes) const;

  /// Sort(aTupleCollection, heap sort, attribute_list), no duplicate elimination.
  Result<Collection> Sort(const Collection& arg,
                          const std::vector<std::string>& attributes,
                          bool ascending = true) const;

  /// DupElim(arg) per Table 3; Set argument is rejected as "not applicable".
  Result<Collection> DupElim(const Collection& arg) const;

  Result<Collection> Union(const Collection& a, const Collection& b) const;
  Result<Collection> Intersection(const Collection& a, const Collection& b) const;
  Result<Collection> Difference(const Collection& a, const Collection& b) const;

  // --- Conversion operators ----------------------------------------------------

  Result<Collection> AsSet(const Collection& arg) const;
  Result<Collection> AsList(const Collection& arg) const;
  Result<Collection> AsExtent(const Collection& arg) const;

  /// Unnest over the first Set/List-valued field of each tuple (or a specific
  /// field index).
  Result<Collection> Unnest(const Collection& arg, int field_index = -1) const;
  /// Nest: inverse of Unnest over the given field.
  Result<Collection> Nest(const Collection& arg, int field_index) const;

  /// Flatten(arg): set/list of collections -> set of object identifiers.
  Result<Collection> Flatten(const Collection& arg) const;

  ObjectManager* objects() const { return objects_; }

 private:
  /// Materializes the tuple value of an element (deref when the collection holds
  /// identifiers).
  Result<MoodValue> ElementValue(const Collection& coll, size_t i) const;
  Result<std::vector<MoodValue>> KeyOf(const MoodValue& tuple,
                                       const std::string& class_name,
                                       const std::vector<std::string>& attrs) const;

  ObjectManager* objects_;
  Evaluator* evaluator_;
  std::map<std::string, Collection> session_names_;
};

}  // namespace mood
