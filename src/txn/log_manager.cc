#include "txn/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"

namespace mood {

namespace {
Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for '" + path + "': " + std::strerror(errno));
}
}  // namespace

LogManager::~LogManager() {
  if (fd_ >= 0) Close();
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) return Status::InvalidArgument("LogManager already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  // Recover next_lsn_ by scanning the existing log tail.
  std::vector<LogRecord> records;
  {
    // ReadAll without re-locking.
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Errno("fstat", path);
    std::string all(static_cast<size_t>(st.st_size), '\0');
    if (st.st_size > 0) {
      ssize_t n = ::pread(fd_, all.data(), all.size(), 0);
      if (n != st.st_size) return Errno("pread", path);
    }
    Decoder dec(all);
    while (!dec.Empty()) {
      Slice body;
      if (!dec.GetLengthPrefixedSlice(&body).ok()) break;  // torn tail: stop
      if (body.size() < 17) break;
      Lsn lsn = DecodeFixed64(body.data());
      if (lsn >= next_lsn_) next_lsn_ = lsn + 1;
    }
  }
  return Status::OK();
}

Status LogManager::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  if (!buffer_.empty()) {
    ssize_t n = ::write(fd_, buffer_.data(), buffer_.size());
    if (n != static_cast<ssize_t>(buffer_.size())) return Errno("write", path_);
    buffer_.clear();
  }
  ::close(fd_);
  fd_ = -1;
  return Status::OK();
}

Result<Lsn> LogManager::Append(LogRecordType type, uint64_t txn_id, PageId page,
                               Slice before, Slice after) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  Lsn lsn = next_lsn_++;
  std::string body;
  PutFixed64(&body, lsn);
  PutFixed64(&body, txn_id);
  body.push_back(static_cast<char>(type));
  if (type == LogRecordType::kPageWrite) {
    PutFixed32(&body, page);
    PutLengthPrefixedSlice(&body, before);
    PutLengthPrefixedSlice(&body, after);
  }
  PutLengthPrefixedSlice(&buffer_, body);
  return lsn;
}

Result<Lsn> LogManager::AppendBegin(uint64_t txn_id) {
  return Append(LogRecordType::kBegin, txn_id, kInvalidPageId, {}, {});
}
Result<Lsn> LogManager::AppendCommit(uint64_t txn_id) {
  return Append(LogRecordType::kCommit, txn_id, kInvalidPageId, {}, {});
}
Result<Lsn> LogManager::AppendAbort(uint64_t txn_id) {
  return Append(LogRecordType::kAbort, txn_id, kInvalidPageId, {}, {});
}
Result<Lsn> LogManager::AppendPageWrite(uint64_t txn_id, PageId page, Slice before,
                                        Slice after) {
  return Append(LogRecordType::kPageWrite, txn_id, page, before, after);
}
Result<Lsn> LogManager::AppendCheckpoint() {
  return Append(LogRecordType::kCheckpoint, 0, kInvalidPageId, {}, {});
}

Status LogManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  if (!buffer_.empty()) {
    ssize_t n = ::write(fd_, buffer_.data(), buffer_.size());
    if (n != static_cast<ssize_t>(buffer_.size())) return Errno("write", path_);
    buffer_.clear();
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status LogManager::ReadAll(std::vector<LogRecord>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat", path_);
  std::string all(static_cast<size_t>(st.st_size), '\0');
  if (st.st_size > 0) {
    ssize_t n = ::pread(fd_, all.data(), all.size(), 0);
    if (n != st.st_size) return Errno("pread", path_);
  }
  all.append(buffer_);  // include unflushed tail for in-process readers
  Decoder dec(all);
  out->clear();
  while (!dec.Empty()) {
    Slice body;
    Status st2 = dec.GetLengthPrefixedSlice(&body);
    if (!st2.ok()) break;  // torn tail after crash: ignore
    Decoder b(body);
    LogRecord rec;
    uint8_t type_byte = 0;
    MOOD_RETURN_IF_ERROR(b.GetFixed64(&rec.lsn));
    MOOD_RETURN_IF_ERROR(b.GetFixed64(&rec.txn_id));
    {
      Slice rest = b.rest();
      if (rest.empty()) return Status::Corruption("log record missing type");
      type_byte = static_cast<uint8_t>(rest[0]);
      Decoder b2(Slice(rest.data() + 1, rest.size() - 1));
      rec.type = static_cast<LogRecordType>(type_byte);
      if (rec.type == LogRecordType::kPageWrite) {
        MOOD_RETURN_IF_ERROR(b2.GetFixed32(&rec.page_id));
        MOOD_RETURN_IF_ERROR(b2.GetString(&rec.before));
        MOOD_RETURN_IF_ERROR(b2.GetString(&rec.after));
      }
    }
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

Status LogManager::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("LogManager not open");
  buffer_.clear();
  if (::ftruncate(fd_, 0) != 0) return Errno("ftruncate", path_);
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

}  // namespace mood
