// Section 2's headline design claim: dividing labor between a SQL interpreter
// and a C++ compiler avoids interpreting function bodies. Measures (with
// google-benchmark):
//   - invoking a *compiled* (native, signature-dispatched) method body,
//   - invoking the same body through the *interpreted* fallback
//     (OperandDataType-based expression interpretation),
//   - cold (signature lookup + load) vs warm (already in memory) dispatch,
//   - raw OperandDataType expression interpretation as the baseline unit.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "types/operand.h"

using namespace mood;
using namespace mood::bench;

namespace {

struct Env {
  BenchDb scratch{"funcman"};
  Database db;
  Oid vehicle;
  MoodValue self;
  std::vector<std::string> attr_names;

  Env() {
    Check(db.Open(scratch.Path("mood")), "open");
    Check(paperdb::CreatePaperSchema(&db), "schema");
    vehicle = CheckV(db.objects()->CreateObject(
                         "Vehicle", MoodValue::Tuple({MoodValue::Integer(1),
                                                      MoodValue::Integer(1000)})),
                     "create");
    self = CheckV(db.objects()->Fetch(vehicle), "fetch");
    auto attrs = CheckV(db.catalog()->AllAttributes("Vehicle"), "attrs");
    for (const auto& a : attrs) attr_names.push_back(a.name);
    // Register a compiled body for `compiled_lbweight`.
    MoodsFunction decl;
    decl.name = "compiled_lbweight";
    decl.return_type = TypeDesc::Basic(BasicType::kInteger);
    Check(db.functions()->Register(
              "Vehicle", decl,
              [](const MethodContext& ctx, const std::vector<MoodValue>&)
                  -> Result<MoodValue> {
                MOOD_ASSIGN_OR_RETURN(MoodValue w, ctx.Attr("weight"));
                return MoodValue::Integer(
                    static_cast<int32_t>(w.AsInteger() * 2.2075));
              }),
          "register");
  }

  MethodContext Ctx() {
    MethodContext ctx;
    ctx.self = vehicle;
    ctx.self_value = &self;
    ctx.attr_names = &attr_names;
    return ctx;
  }
};

Env* env() {
  static Env e;
  return &e;
}

void BM_CompiledDispatchWarm(benchmark::State& state) {
  MethodContext ctx = env()->Ctx();
  for (auto _ : state) {
    auto r = env()->db.functions()->Invoke("Vehicle", "compiled_lbweight", ctx, {});
    if (!r.ok()) state.SkipWithError("invoke failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CompiledDispatchWarm);

void BM_CompiledDispatchCold(benchmark::State& state) {
  MethodContext ctx = env()->Ctx();
  for (auto _ : state) {
    env()->db.functions()->UnloadAll();  // force the shared-object "open"
    auto r = env()->db.functions()->Invoke("Vehicle", "compiled_lbweight", ctx, {});
    if (!r.ok()) state.SkipWithError("invoke failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CompiledDispatchCold);

void BM_InterpretedBody(benchmark::State& state) {
  // lbweight has only the stored source "{ return weight * 2.2075; }": every
  // call parses and interprets it through OperandDataType.
  MethodContext ctx = env()->Ctx();
  for (auto _ : state) {
    auto r = env()->db.functions()->Invoke("Vehicle", "lbweight", ctx, {});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InterpretedBody);

void BM_RawOperandExpression(benchmark::State& state) {
  // The pure interpreter unit: (x*3 + x%3) * (y/4*5) from the paper's Section 2.
  for (auto _ : state) {
    OperandDataType x(DataTypeCode::kInt16), y(DataTypeCode::kInt32),
        z(DataTypeCode::kDouble);
    x = int64_t{10};
    y = int64_t{13};
    OperandDataType c3(DataTypeCode::kInt16), c4(DataTypeCode::kInt16),
        c5(DataTypeCode::kInt16);
    c3 = int64_t{3};
    c4 = int64_t{4};
    c5 = int64_t{5};
    z.Assign((x * c3 + x % c3) * (y / c4 * c5));
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_RawOperandExpression);

void BM_NativeLambdaBaseline(benchmark::State& state) {
  // What the body costs without any kernel machinery.
  int32_t weight = 1000;
  for (auto _ : state) {
    int32_t lb = static_cast<int32_t>(weight * 2.2075);
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_NativeLambdaBaseline);

}  // namespace

BENCHMARK_MAIN();
