#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/storage_manager.h"
#include "types/oid.h"
#include "types/type_desc.h"

namespace mood {

/// Catalog type identifier. Ids 1..6 are reserved for the basic types; user
/// classes and types start at 16.
using TypeId = uint32_t;
inline constexpr TypeId kInvalidTypeId = 0;
inline constexpr TypeId kFirstUserTypeId = 16;

/// Attribute description stored in the catalog (the paper's MoodsAttribute
/// system class).
struct MoodsAttribute {
  std::string name;
  TypeDescPtr type;
};

/// Member-function signature information (the paper's MoodsFunction system
/// class). "MOOD System handles the methods only by keeping information on their
/// name, return type, and names and types of their parameters" — the body is kept
/// as processed C++ source for the Function Manager.
struct MoodsFunction {
  std::string name;
  TypeDescPtr return_type;
  std::vector<MoodsAttribute> params;
  std::string body_source;

  /// Signature used to locate the compiled function: ClassName::name(T1,T2,...).
  std::string Signature(const std::string& class_name) const;
};

/// Kinds of secondary indexes the catalog can register.
enum class IndexKind : uint8_t {
  kBTree = 0,
  kHash = 1,
  kRTree = 2,
  kPath = 3,
  kBinaryJoin = 4,
};

std::string_view IndexKindName(IndexKind k);

/// Descriptor of one registered index.
struct IndexDesc {
  std::string name;
  std::string class_name;
  /// Attribute name for kBTree/kHash/kRTree; dotted path (e.g.
  /// "drivetrain.engine.cylinders") for kPath; reference attribute for kBinaryJoin.
  std::string attribute;
  IndexKind kind = IndexKind::kBTree;
  bool unique = false;
  PageId meta1 = kInvalidPageId;  // tree/hash/rtree/path meta page; BJI forward
  PageId meta2 = kInvalidPageId;  // BJI backward tree meta page
};

/// A class or type registered in the catalog (the paper's MoodsType system
/// class). Per Section 2, classes differ from types in that they have a default
/// extent, identity semantics, and participate in the class hierarchy.
struct MoodsType {
  TypeId id = kInvalidTypeId;
  std::string name;
  bool is_class = false;
  std::vector<std::string> supers;  // multiple inheritance (IS-A DAG)
  std::vector<MoodsAttribute> own_attributes;
  std::vector<MoodsFunction> functions;
  FileId extent_file = kInvalidFileId;

  const MoodsFunction* FindFunction(const std::string& fname) const;
};

/// Persisted definition of one materialized view: the name plus the SELECT
/// source text (re-parsed and re-materialized on reopen by the MV subsystem).
struct MatViewDef {
  std::string name;
  std::string select_sql;
};

/// The MOOD catalog: "the definition of classes, types, and member functions in a
/// structure similar to a compiler symbol table", persisted on the storage
/// manager so compile-time information survives to run time (late binding).
class Catalog {
 public:
  /// Opens (or initializes) the catalog in `storage`. The catalog occupies one
  /// heap file that is created on first use.
  Status Open(StorageManager* storage);

  // --- Type and class definition -------------------------------------------

  struct ClassDef {
    std::string name;
    bool is_class = true;  // false: value type (copy semantics, no extent)
    std::vector<std::string> supers;
    std::vector<MoodsAttribute> attributes;
    std::vector<MoodsFunction> methods;
  };

  Result<TypeId> Define(const ClassDef& def);
  Status Drop(const std::string& name);

  // --- Lookup ----------------------------------------------------------------

  Result<const MoodsType*> Lookup(const std::string& name) const;
  Result<const MoodsType*> Lookup(TypeId id) const;
  bool Exists(const std::string& name) const { return by_name_.count(name) > 0; }

  /// The paper's typeId()/typeName() kernel functions.
  TypeId typeId(const std::string& type_name) const;
  std::string typeName(TypeId id) const;

  std::vector<const MoodsType*> AllTypes() const;

  // --- Inheritance DAG ---------------------------------------------------------

  /// All attributes of a class including inherited ones, supers first
  /// (depth-first over the IS-A DAG, duplicates merged by name).
  Result<std::vector<MoodsAttribute>> AllAttributes(const std::string& name) const;

  /// All functions including inherited; an own function overrides an inherited
  /// one with the same name (late binding resolves bottom-up).
  Result<std::vector<MoodsFunction>> AllFunctions(const std::string& name) const;

  /// Resolves a function by name bottom-up through the hierarchy, returning the
  /// defining class name as well.
  Result<std::pair<std::string, const MoodsFunction*>> ResolveFunction(
      const std::string& class_name, const std::string& fname) const;

  /// Direct subclasses.
  Result<std::vector<std::string>> Subclasses(const std::string& name) const;
  /// The class plus all transitive subclasses (used by EVERY-extent scans).
  Result<std::vector<std::string>> SubtreeClasses(const std::string& name) const;
  /// True if `sub` IS-A `super` (reflexive).
  bool IsSubclassOf(const std::string& sub, const std::string& super) const;

  // --- Dynamic schema changes (MoodView's class designer) ----------------------

  Status AddAttribute(const std::string& class_name, MoodsAttribute attr);
  Status DropAttribute(const std::string& class_name, const std::string& attr);
  Status RenameAttribute(const std::string& class_name, const std::string& from,
                         const std::string& to);
  Status AddFunction(const std::string& class_name, MoodsFunction fn);
  Status DropFunction(const std::string& class_name, const std::string& fname);
  Status UpdateFunctionBody(const std::string& class_name, const std::string& fname,
                            std::string body);

  // --- Index registry -----------------------------------------------------------

  Status RegisterIndex(const IndexDesc& desc);
  Status UnregisterIndex(const std::string& index_name);
  std::vector<IndexDesc> IndexesOn(const std::string& class_name) const;
  std::optional<IndexDesc> FindIndex(const std::string& class_name,
                                     const std::string& attribute,
                                     IndexKind kind) const;
  std::optional<IndexDesc> FindIndexByName(const std::string& index_name) const;

  // --- Materialized views --------------------------------------------------------

  Status RegisterView(const MatViewDef& def);
  Status UnregisterView(const std::string& view_name);
  std::vector<MatViewDef> AllViews() const;
  std::optional<MatViewDef> FindView(const std::string& view_name) const;

  // --- Named objects (the Bind naming operator's persistent side) ---------------

  Status BindName(const std::string& name, Oid oid);
  Status UnbindName(const std::string& name);
  Result<Oid> LookupName(const std::string& name) const;
  std::vector<std::pair<std::string, Oid>> AllNamedObjects() const;

  StorageManager* storage() const { return storage_; }

  /// Monotone counter bumped by every schema mutation (class definition/drop,
  /// attribute or function changes). Caches derived from catalog contents —
  /// e.g. ObjectManager's per-class attribute layouts — validate against this
  /// epoch, mirroring the object-level write-epoch mechanism.
  uint64_t schema_epoch() const { return schema_epoch_.load(std::memory_order_acquire); }

 private:
  void BumpSchemaEpoch() { schema_epoch_.fetch_add(1, std::memory_order_acq_rel); }

  struct StoredType {
    MoodsType type;
    RecordId rid;
  };

  Status PersistType(StoredType* st);
  Status PersistIndexes();
  Status PersistNames();
  Status PersistViews();
  Status LoadAll();

  /// Checks the supers exist and the merged attribute set has no name clashes.
  Status ValidateDef(const ClassDef& def) const;

  static void EncodeType(const MoodsType& t, std::string* dst);
  static Result<MoodsType> DecodeType(Slice in);

  StorageManager* storage_ = nullptr;
  HeapFile* file_ = nullptr;
  std::unordered_map<std::string, std::unique_ptr<StoredType>> by_name_;
  std::unordered_map<TypeId, StoredType*> by_id_;
  std::map<std::string, IndexDesc> indexes_;
  std::map<std::string, Oid> named_objects_;
  std::map<std::string, MatViewDef> views_;
  RecordId index_record_rid_{};
  RecordId names_record_rid_{};
  RecordId views_record_rid_{};
  TypeId next_type_id_ = kFirstUserTypeId;
  std::atomic<uint64_t> schema_epoch_{0};
};

}  // namespace mood
