#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "types/oid.h"

namespace mood {

class MoodValue;
class MetricsRegistry;

/// Writer-priority shared/exclusive gate serializing physical page access
/// between concurrently running statements (DESIGN.md §14).
///
/// Readers (whole SELECT statements) hold the gate shared; writers hold it
/// exclusive only around individual object mutations (heap write + index
/// maintenance + pre-image capture), never across lock waits or the commit
/// fsync. Writer priority — an arriving writer blocks *new* readers and waits
/// only for the readers already in flight — keeps update latency bounded under
/// read-heavy traffic instead of starving behind an endless reader stream.
///
/// Lock-ordering rule (deadlock freedom): a thread never blocks on the
/// LockManager while holding the gate in either mode, and gate acquisitions
/// never nest. 2PL locks are taken at statement start, before any gate use.
class CommitGate {
 public:
  void LockShared() {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return !writer_active_ && writers_waiting_ == 0; });
    readers_++;
  }
  void UnlockShared() {
    std::lock_guard<std::mutex> l(mu_);
    if (--readers_ == 0) cv_.notify_all();
  }
  void LockExclusive() {
    std::unique_lock<std::mutex> l(mu_);
    writers_waiting_++;
    cv_.wait(l, [&] { return !writer_active_ && readers_ == 0; });
    writers_waiting_--;
    writer_active_ = true;
  }
  void UnlockExclusive() {
    std::lock_guard<std::mutex> l(mu_);
    writer_active_ = false;
    cv_.notify_all();
  }

  /// RAII guards; a null gate pointer makes them no-ops so call sites stay
  /// unconditional ("gate if versioning is wired up").
  class SharedGuard {
   public:
    explicit SharedGuard(CommitGate* g) : g_(g) {
      if (g_) g_->LockShared();
    }
    ~SharedGuard() {
      if (g_) g_->UnlockShared();
    }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    CommitGate* g_;
  };
  class ExclusiveGuard {
   public:
    explicit ExclusiveGuard(CommitGate* g) : g_(g) {
      if (g_) g_->LockExclusive();
    }
    ~ExclusiveGuard() {
      if (g_) g_->UnlockExclusive();
    }
    ExclusiveGuard(const ExclusiveGuard&) = delete;
    ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

   private:
    CommitGate* g_;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

/// Multi-version store of committed pre-images, the engine's snapshot-read
/// backbone (DESIGN.md §14). Readers never take 2PL locks: a statement (or a
/// read-only snapshot transaction) pins a commit sequence number S and
/// reconstructs the database state as of S from the heap plus this store.
///
/// The store holds *pre-images*: just before a writer mutates an object it
/// captures the object's current committed state into the oid's version chain
/// as a pending entry; when the writer commits, every entry of its batch is
/// stamped with a fresh CSN — "this pre-image was superseded at CSN c". While
/// uncommitted, the entry's CSN is kPendingCsn (treated as +infinity), which is
/// exactly what makes uncommitted heap bytes invisible: the pre-image is the
/// last committed state.
///
/// Visibility rule for a reader at snapshot S probing oid X:
///   among X's chain entries pick the smallest superseded_csn > S
///     - entry found, absent flag set  -> X did not exist at S
///     - entry found                   -> the stored pre-image is X at S
///     - no entry                      -> the heap's current record is X at S
/// (heap state reflects every commit <= some csn <= S once no entry
/// supersedes it past S).
///
/// Garbage collection: an entry is droppable once superseded_csn <= the
/// minimum pinned snapshot (no pinned snapshot can still select it). With no
/// pins the store drains to empty, so FileHasVersions() — a relaxed per-file
/// counter probe — keeps the read hot path version-free in steady state.
///
/// Thread safety: one mutex guards chains/pins/batches; FileHasVersions and
/// CurrentCsn are lock-free. Mutations are expected to run under the
/// CommitGate's exclusive section (the gate also publishes chain updates to
/// readers), but the store is internally consistent regardless.
class VersionStore {
 public:
  static constexpr uint64_t kPendingCsn = ~0ull;

  /// What a reader gets back from VisibleVersion: either "absent at S" or the
  /// decoded pre-image (type id + immutable tuple snapshot).
  struct Version {
    bool absent = false;
    uint32_t type_id = 0;
    std::shared_ptr<const MoodValue> tuple;
  };

  uint64_t CurrentCsn() const { return last_csn_.load(std::memory_order_acquire); }

  // --- writer side ----------------------------------------------------------

  /// Allocates a batch key grouping the captures of one transaction (or one
  /// autocommit statement) so they commit atomically under a single CSN.
  uint64_t BeginBatch();

  /// Records the pre-write state of `oid`: `absent_before` marks a creation
  /// (no committed state existed); otherwise `type_id`/`pre_image` hold the
  /// committed tuple being superseded. `live_after` is whether the heap still
  /// has a record for `oid` after this write (false only for deletes) — it
  /// drives scan injection of deleted-but-visible objects. First capture wins
  /// within a batch: later writes by the same batch keep the original
  /// pre-image (the batch is atomic, intermediate states are never visible).
  void CapturePending(uint64_t batch, Oid oid, bool absent_before, uint32_t type_id,
                      std::shared_ptr<const MoodValue> pre_image, bool live_after);

  /// Stamps the batch's entries with a fresh CSN (returned). Entries whose
  /// pre-images no pinned snapshot can still see are dropped immediately.
  uint64_t CommitBatch(uint64_t batch);

  /// Drops the batch's pending entries and restores the chains' heap-liveness
  /// flags (the caller is about to undo the physical writes).
  void AbortBatch(uint64_t batch);

  // --- reader side ----------------------------------------------------------

  /// Pins the current CSN as a snapshot; entries it can see survive GC until
  /// Unpin. Every snapshot reader must pin (statement-scope for autocommit
  /// SELECTs, transaction-scope for read-only snapshot txns).
  uint64_t PinSnapshot();
  /// Pin variant that also reports, atomically with the pin, which file slots
  /// carried PENDING (uncommitted) chains at pin time. A session pinned while
  /// a slot was pending sees pre-images whose content predates that slot's
  /// already-bumped write epoch — its result-cache use of that slot would
  /// alias a later committed state, so the caller must treat it as dirty.
  uint64_t PinSnapshot(std::array<bool, 64>* pending_slots);
  void UnpinSnapshot(uint64_t snap);

  /// Number of currently pinned snapshots (tests assert pins drain to zero).
  size_t PinnedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pins_.size();
  }

  /// True when a chain entry supersedes the heap record of `oid` as seen from
  /// snapshot `snap` (fills `out`); false when the heap state is correct as-of
  /// `snap`.
  bool VisibleVersion(Oid oid, uint64_t snap, Version* out) const;

  /// Lock-free fast path: false means no oid of any file aliasing this slot
  /// has a chain, so scans and fetches can skip VisibleVersion entirely.
  bool FileHasVersions(uint16_t file) const {
    return file_counts_[file % kFileSlots].load(std::memory_order_acquire) > 0;
  }

  /// Like FileHasVersions but counting only PENDING (uncommitted) entries.
  /// This is the result cache's staleness guard: while a pending pre-image
  /// exists, snapshot readers see content that disagrees with the (already
  /// mutated, already epoch-bumped) heap, so an epoch-stamped cache entry
  /// could alias two different states. Committed chains are harmless — the
  /// heap holds the latest committed state and epochs identify it.
  bool FileHasPendingVersions(uint16_t file) const {
    return pending_counts_[file % kFileSlots].load(std::memory_order_acquire) > 0;
  }

  /// Oids of `file` whose heap record is currently gone but whose chain may
  /// still make them visible at some snapshot — the candidates a snapshot scan
  /// must inject because the page walk cannot surface them. Sorted by oid.
  std::vector<Oid> HeapAbsentOids(uint16_t file) const;

  /// Every oid of `file` with any chain entry, sorted — index-probe
  /// compensation candidates (their indexed keys may differ at the snapshot).
  std::vector<Oid> TrackedOids(uint16_t file) const;

  /// Executor-reported count of objects injected into snapshot scans
  /// (txn.snapshot.injected). Const: readers report through their
  /// const view of the store.
  void NoteInjected(uint64_t n) const {
    injected_.fetch_add(n, std::memory_order_relaxed);
  }

  CommitGate& gate() { return gate_; }

  /// Registers the txn.snapshot.* probe: captures, commits, gc_dropped,
  /// injected, pinned (current), chains/entries (current).
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  struct Entry {
    uint64_t superseded_csn = kPendingCsn;
    uint64_t batch = 0;
    bool absent = false;
    uint32_t type_id = 0;
    std::shared_ptr<const MoodValue> tuple;
  };
  struct Chain {
    std::vector<Entry> entries;  // ascending superseded_csn; pendings at tail
    bool live_in_heap = true;    // current physical heap state for this oid
  };

  /// Minimum CSN any pinned snapshot may still read past (callers hold mu_).
  uint64_t MinActiveSnapshotLocked() const {
    return pins_.empty() ? last_csn_.load(std::memory_order_relaxed) : *pins_.begin();
  }
  /// Drops entries no pinned snapshot can select; erases drained chains.
  void CollectGarbageLocked();

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Chain> chains_;  // key: Oid::Pack()
  std::unordered_map<uint64_t, std::vector<uint64_t>> batch_oids_;
  std::multiset<uint64_t> pins_;
  std::atomic<uint64_t> last_csn_{0};
  std::atomic<uint64_t> next_batch_{1};

  static constexpr size_t kFileSlots = 64;  // matches ObjectManager::kEpochSlots
  std::array<std::atomic<uint64_t>, kFileSlots> file_counts_{};
  std::array<std::atomic<uint64_t>, kFileSlots> pending_counts_{};

  CommitGate gate_;

  std::atomic<uint64_t> captures_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> gc_dropped_{0};
  mutable std::atomic<uint64_t> injected_{0};
};

}  // namespace mood
